"""Quickstart: factor a matrix three ways and check they agree.

Shows the three levels of the library:

1. ``repro.svd`` — the plain software one-sided Jacobi solver.
2. ``HeteroSVDAccelerator`` — the full functional model of the paper's
   accelerator (data arrangement -> packetized PLIO streams ->
   shifting-ring orth-AIE sweeps -> convergence FSM -> norm-AIEs).
3. ``PerformanceModel`` / ``TimingSimulator`` — how long that design
   would take on the modelled VCK190.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    HeteroSVDAccelerator,
    HeteroSVDConfig,
    PerformanceModel,
    TimingSimulator,
    svd,
)
from repro.linalg.reference import validate_svd


def main():
    rng = np.random.default_rng(2025)
    m, n = 128, 128
    a = rng.standard_normal((m, n))

    # 1. Software SVD (block-Jacobi, the paper's Algorithm 1 in pure
    #    software).
    sw = svd(a, method="block", block_width=8, precision=1e-8)
    report = validate_svd(a, sw.u, sw.singular_values, sw.v)
    print(f"software block-Jacobi: {sw.sweeps} sweeps, "
          f"reconstruction error {report.reconstruction_error:.2e}")

    # 2. The functional hardware model, at the paper's flagship
    #    configuration (P_eng = 8).
    config = HeteroSVDConfig(m=m, n=n, p_eng=8, p_task=1, precision=1e-8)
    accel = HeteroSVDAccelerator(config)
    hw = accel.run(a)
    s_ref = np.linalg.svd(a, compute_uv=False)
    max_dev = np.max(np.abs(hw.sigma - s_ref)) / s_ref[0]
    print(f"hardware functional model: {hw.iterations} iterations, "
          f"max singular-value deviation vs LAPACK {max_dev:.2e}")
    print(f"  traffic: {hw.transfers.dma_transfers} DMA / "
          f"{hw.transfers.neighbor_transfers} neighbour column transfers")

    # 3. Predicted performance of this design point on the VCK190.
    model = PerformanceModel(config)
    sim = TimingSimulator(config).simulate(1)
    print(f"modelled task latency:  {model.task_time() * 1e3:.3f} ms")
    print(f"simulated task latency: {sim.latency * 1e3:.3f} ms "
          f"({sim.iterations} sweeps at "
          f"{config.pl_frequency_hz / 1e6:.1f} MHz PL clock)")


if __name__ == "__main__":
    main()
