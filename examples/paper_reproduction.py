"""One-shot reproduction of every paper experiment, outside pytest.

Runs compact versions of Tables II-VI and Figs. 3 & 9 sequentially and
prints the paper-vs-reproduction tables (the benchmark harness under
``benchmarks/`` runs the same experiments with assertions and
pytest-benchmark timings; this script is the human-readable tour).

Run:  python examples/paper_reproduction.py          # ~1-2 minutes
"""

from repro.baselines.fpga_bcv import FPGABaselineModel
from repro.baselines.gpu_wcycle import GPUBaselineModel
from repro.core.config import HeteroSVDConfig
from repro.core.dataflow import DataflowMode
from repro.core.dse import DesignSpaceExplorer
from repro.core.ordering_codesign import (
    MovementSchedule,
    codesign_dma_transfers,
    traditional_dma_transfers,
)
from repro.core.perf_model import PerformanceModel
from repro.core.timing import TimingSimulator
from repro.reporting.tables import Table
from repro.units import mhz


def table2():
    fpga = FPGABaselineModel()
    table = Table(
        "Table II: latency (s) vs FPGA [6], 6 iterations, P_eng=8",
        ["size", "FPGA", "HeteroSVD", "speedup", "paper speedup"],
    )
    paper = {128: 1.27, 256: 1.98, 512: 1.90, 1024: 1.79}
    for m in (128, 256, 512, 1024):
        point = DesignSpaceExplorer(m, m, fixed_iterations=6).evaluate(8, 1)
        hetero = TimingSimulator(point.config).simulate(1).latency
        fpga_latency = fpga.latency_seconds(m, 6)
        table.add_row(
            f"{m}x{m}", f"{fpga_latency:.4f}", f"{hetero:.4f}",
            f"{fpga_latency / hetero:.2f}x", f"{paper[m]:.2f}x",
        )
    table.print()


def table3():
    gpu = GPUBaselineModel()
    table = Table(
        "Table III: vs GPU [11] (converged, batch 100, <39 W)",
        ["size", "lat speedup", "thr speedup", "EE gain",
         "paper (lat/thr/EE)"],
    )
    paper = {
        128: "7.22x / 1.77x / 13.2x",
        256: "3.30x / 1.10x / 7.8x",
        512: "1.15x / 0.89x / 6.5x",
        1024: "0.86x / 0.36x / 4.4x",
    }
    for m in (128, 256, 512, 1024):
        dse = DesignSpaceExplorer(m, m)
        lat_pt = dse.best("latency", power_cap_w=39.0)
        thr_pt = dse.best("throughput", batch=100, power_cap_w=39.0)
        h_lat = TimingSimulator(lat_pt.config).simulate(1).latency
        h_thr = PerformanceModel(thr_pt.config).throughput(100)
        h_ee = h_thr / thr_pt.power.total
        table.add_row(
            f"{m}x{m}",
            f"{gpu.latency_seconds(m, m) / h_lat:.2f}x",
            f"{h_thr / gpu.throughput_tasks_per_s(m, m, 100):.2f}x",
            f"{h_ee / gpu.energy_efficiency(m, m, 100):.2f}x",
            paper[m],
        )
    table.print()


def table4():
    table = Table(
        "Table IV: model vs measured single-iteration time @ 208.3 MHz",
        ["size", "P_eng", "measured ms", "model ms", "error",
         "paper error"],
    )
    paper_err = {
        (128, 2): 2.92, (256, 2): 3.03, (512, 2): 2.80,
        (128, 4): 1.03, (256, 4): 1.66, (512, 4): 1.48,
        (128, 8): 2.57, (256, 8): 0.05, (512, 8): 0.56,
    }
    for p_eng in (2, 4, 8):
        for m in (128, 256, 512):
            config = HeteroSVDConfig(
                m=m, n=m, p_eng=p_eng, p_task=1,
                pl_frequency_hz=mhz(208.3), fixed_iterations=1,
            )
            measured = TimingSimulator(config).measure_iteration_time()
            modelled = PerformanceModel(config).iteration_time()
            error = abs(modelled - measured) / measured * 100
            table.add_row(
                f"{m}x{m}", p_eng, f"{measured * 1e3:.3f}",
                f"{modelled * 1e3:.3f}", f"{error:.2f}%",
                f"{paper_err[(m, p_eng)]:.2f}%",
            )
    table.print()


def table6():
    table = Table(
        "Table VI: design points at 256x256, 208.3 MHz, 6 iterations",
        ["P_eng", "P_task", "AIE", "URAM", "latency ms", "power W"],
    )
    dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
    for p_eng in (2, 4, 6, 8):
        p_task = dse.max_p_task(p_eng, frequency_hz=mhz(208.3))
        point = dse.evaluate(p_eng, p_task, frequency_hz=mhz(208.3))
        table.add_row(
            p_eng, p_task, point.usage.aie, point.usage.uram,
            f"{point.latency * 1e3:.3f}", f"{point.power.total:.2f}",
        )
    table.print()


def fig3():
    table = Table(
        "Fig. 3: DMA transfers per block-pair sweep",
        ["k", "traditional 2k(k-1)", "co-design 2(k-1)", "reduction"],
    )
    for k in (2, 3, 4, 6, 8, 11):
        trad = MovementSchedule(k=k, shifting=False).dma_count(
            DataflowMode.NAIVE
        )
        code = MovementSchedule(k=k, shifting=True).dma_count(
            DataflowMode.RELOCATED
        )
        assert trad == traditional_dma_transfers(k)
        assert code == codesign_dma_transfers(k)
        table.add_row(k, trad, code, f"{trad / max(1, code):.0f}x")
    table.print()


def main():
    fig3()
    table4()
    table2()
    table6()
    table3()
    print("Full assertions and Fig. 9 live in benchmarks/ "
          "(pytest benchmarks/ --benchmark-only).")


if __name__ == "__main__":
    main()
