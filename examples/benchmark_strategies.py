"""Benchmark the scalar vs vectorized Jacobi inner loop, end to end.

The vectorized path batches each ordering round — a perfect matching
of the columns, so its pairs touch disjoint columns — into whole-round
NumPy operations.  This example makes the performance story concrete:

1. runs the ``solver`` benchmark suite at a chosen size,
2. prints the per-case wall times and the scalar/vectorized speedups,
3. writes the ``BENCH_solver.json`` report, reloads it through the
   schema validator, and re-compares it against itself (the degenerate
   regression check every CI run performs against the previous run),
4. verifies the two strategies agree: same singular values (to
   floating-point summation order), same sweep count.

Run:  python examples/benchmark_strategies.py [size]   (default 128)
"""

import sys
import tempfile

import numpy as np

from repro.bench import (
    build_suite,
    compare_reports,
    load_report,
    report_path,
    run_suite,
    strategy_speedups,
    write_report,
)
from repro.linalg import hestenes_svd
from repro.reporting.tables import Table
from repro.workloads import random_matrix


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    # 1-2. Run the declared solver suite and show the numbers.
    report = run_suite("solver", build_suite("solver", size), seed=0)
    table = Table(
        f"solver suite at size {size}",
        ["case", "wall time [s]", "sweeps"],
    )
    for result in report.results:
        table.add_row(result.name, f"{result.wall_time_s:.4f}",
                      str(result.metrics.get("sweeps", "-")))
    table.print()
    for pair, speedup in sorted(strategy_speedups(report).items()):
        print(f"speedup {pair}: {speedup:.2f}x (scalar / vectorized)")

    # 3. Report round-trip + self-comparison.
    with tempfile.TemporaryDirectory() as directory:
        path = write_report(report, report_path(directory, "solver"))
        reloaded = load_report(path)
        comparison = compare_reports(reloaded, report, threshold=0.25)
        print(f"report round-trip ok; breached={comparison.breached} "
              f"({len(comparison.steady)} steady cases)")

    # 4. Parity: the batched rounds perform the same rotations.
    a = random_matrix(size, size, seed=0)
    scalar = hestenes_svd(a, strategy="scalar")
    vectorized = hestenes_svd(a, strategy="vectorized")
    gap = float(np.max(np.abs(
        scalar.singular_values - vectorized.singular_values
    )))
    print(f"parity: max singular-value gap {gap:.2e}, sweeps "
          f"{scalar.sweeps} (scalar) vs {vectorized.sweeps} (vectorized)")


if __name__ == "__main__":
    main()
