"""Subspace tracking with warm-started SVD — the streaming extension.

A sensor array's channel drifts slowly between snapshots; re-solving
from scratch wastes most of the sweeps re-discovering an almost-known
subspace.  The :class:`~repro.core.incremental.IncrementalSVD` tracker
seeds each solve with the previous right singular basis, cutting sweep
counts (and therefore accelerator iterations, which the performance
model prices directly).

Run:  python examples/subspace_tracking.py
"""

import numpy as np

from repro.core.config import HeteroSVDConfig
from repro.core.incremental import IncrementalSVD
from repro.core.perf_model import PerformanceModel
from repro.reporting.tables import Table
from repro.workloads.matrices import random_matrix

M, N = 96, 48
DRIFT = 0.01
STEPS = 8


def main():
    rng = np.random.default_rng(17)
    a = random_matrix(M, N, seed=3)
    tracker = IncrementalSVD(precision=1e-8)

    table = Table(
        f"Warm-started tracking of a drifting {M}x{N} matrix "
        f"(drift {DRIFT} per step)",
        ["step", "mode", "sweeps", "top sigma", "spectrum error"],
    )
    cold = tracker.update(a)
    reference = np.linalg.svd(a, compute_uv=False)
    table.add_row(
        0, "cold", cold.sweeps, f"{cold.singular_values[0]:.4f}",
        f"{np.max(np.abs(cold.singular_values - reference)):.2e}",
    )
    for step in range(1, STEPS + 1):
        a = a + DRIFT * rng.standard_normal(a.shape)
        result = tracker.update(a)
        reference = np.linalg.svd(a, compute_uv=False)
        table.add_row(
            step, "warm", result.sweeps,
            f"{result.singular_values[0]:.4f}",
            f"{np.max(np.abs(result.singular_values - reference)):.2e}",
        )
    table.print()

    warm_sweeps = tracker.history[1:]
    print(f"cold solve: {tracker.history[0]} sweeps; warm updates: "
          f"{min(warm_sweeps)}-{max(warm_sweeps)} sweeps")

    # What the sweep saving is worth on the accelerator.
    config = HeteroSVDConfig(m=M, n=N, p_eng=8, p_task=1)
    model = PerformanceModel(config)
    t_cold = model.task_time(iterations=tracker.history[0])
    t_warm = model.task_time(iterations=max(warm_sweeps))
    print(f"modelled accelerator time: cold {t_cold * 1e6:.1f} us vs "
          f"warm {t_warm * 1e6:.1f} us per update "
          f"({t_cold / t_warm:.2f}x faster tracking)")


if __name__ == "__main__":
    main()
