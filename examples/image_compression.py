"""Low-rank image compression — SVD as data approximation.

Factors a synthetic image on the functional accelerator (with the
randomized truncated solver for the top-k path) and reports the classic
rank / compression-ratio / PSNR trade-off.

Run:  python examples/image_compression.py
"""

from repro.linalg.truncated import truncated_svd
from repro.reporting.tables import Table
from repro.session import HeteroSVDSession
from repro.workloads.imaging import (
    compress_image,
    compression_ratio,
    psnr,
    synthetic_image,
)

SIZE = 128


def main():
    image = synthetic_image(SIZE, SIZE, smoothness=2.0, seed=21)

    # Full factorization on the configured accelerator model.
    session = HeteroSVDSession(SIZE, SIZE, objective="latency",
                               precision=1e-8, accumulate_v=True)
    result = session.svd(image)
    print(f"factored {SIZE}x{SIZE} image on: {session.describe()}")

    table = Table(
        "Rank / storage / quality trade-off",
        ["rank", "compression", "PSNR (dB)"],
    )
    for rank in (2, 4, 8, 16, 32, 64):
        approx = compress_image(
            image, result.u, result.singular_values, result.v, rank
        )
        table.add_row(
            rank,
            f"{compression_ratio(SIZE, SIZE, rank):.1f}x",
            f"{psnr(image, approx):.1f}",
        )
    table.print()

    # The top-k-only path: randomized sketch + small dense Jacobi core.
    rank = 16
    sketched = truncated_svd(image, rank=rank, seed=0, power_iterations=2)
    approx = compress_image(
        image, sketched.u, sketched.singular_values, sketched.v, rank
    )
    print(
        f"randomized top-{rank}: PSNR {psnr(image, approx):.1f} dB with a "
        f"{sketched.u.shape[0]}x{rank} sketch core "
        f"({sketched.sweeps} Jacobi sweeps on the small matrix)"
    )


if __name__ == "__main__":
    main()
