"""Energy and roofline analysis of HeteroSVD design points.

Combines three analysis tools on the Table VI design points:

* the time-resolved power trace (energy per task, peak vs average),
* the roofline characterization (which roof binds, and by how much),
* the calibration sensitivity ranking (which constants carry the
  timing claims).

Run:  python examples/energy_analysis.py
"""

from repro.analysis.roofline import roofline_analysis
from repro.analysis.sensitivity import sensitivity_analysis
from repro.core.config import HeteroSVDConfig
from repro.core.power_trace import trace_task_power
from repro.reporting.tables import Table
from repro.units import mhz

POINTS = [(2, 26), (4, 9), (6, 4), (8, 2)]


def main():
    table = Table(
        "Energy & roofline across the Table VI design points "
        "(256x256, 208.3 MHz, 6 iterations)",
        ["P_eng", "P_task", "energy/task (mJ)", "avg W", "peak W",
         "bound", "compute util", "stream util"],
    )
    for p_eng, p_task in POINTS:
        n = 256 if 256 % p_eng == 0 else (256 // p_eng + 1) * p_eng
        config = HeteroSVDConfig(
            m=256, n=n, p_eng=p_eng, p_task=p_task,
            pl_frequency_hz=mhz(208.3), fixed_iterations=6,
        )
        trace = trace_task_power(config)
        roofline = roofline_analysis(config)
        table.add_row(
            p_eng, p_task,
            f"{trace.total_energy_j * 1e3:.2f}",
            f"{trace.average_power_w:.1f}",
            f"{trace.peak_power_w:.1f}",
            roofline.bound,
            f"{roofline.compute_utilization * 100:.1f}%",
            f"{roofline.stream_utilization * 100:.1f}%",
        )
    table.print()

    config = HeteroSVDConfig(m=256, n=256, p_eng=8, p_task=1,
                             fixed_iterations=6)
    print("Calibration sensitivity at the P_eng=8 point (+20% per knob):")
    for result in sensitivity_analysis(config, scale=1.2):
        print(f"  {result.parameter:<18} "
              f"{result.relative_effect * 100:7.3f}% task-time change")
    print("\nThe design is stream-bound everywhere: the PLIO rate "
          "dominates both performance and the calibration's leverage.")


if __name__ == "__main__":
    main()
