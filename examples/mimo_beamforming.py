"""MIMO beamforming with accelerated SVD — the paper's wireless use case.

SVD-based MIMO transmission (paper refs [1]-[3]) decomposes the channel
``H = U S V^T`` and sends independent data streams along the
eigen-beams: precode with ``V``, combine with ``U^T``, waterfill power
over the singular values.  The channel changes every coherence
interval, so the SVD must finish within a tight deadline — the
latency-critical scenario HeteroSVD targets.

This example:

1. generates a batch of spatially-correlated Rayleigh channels,
2. factors each with the functional accelerator model,
3. verifies the beamformed channel is diagonal and computes the
   waterfilling capacity,
4. asks the timing model whether the chosen design point meets a 5G-ish
   per-slot deadline.

Run:  python examples/mimo_beamforming.py
"""

import numpy as np

from repro import HeteroSVDAccelerator, HeteroSVDConfig, TimingSimulator
from repro.workloads.mimo import mimo_channel, waterfill

N_ANTENNAS = 16          # 16x16 complex channel -> 32x32 real embedding
COHERENCE_DEADLINE_S = 500e-6
SNR_POWER = 20.0


def capacity_bits(sigma, powers):
    """Shannon capacity of parallel eigen-beams (unit noise)."""
    gains = (sigma**2) * powers
    return float(np.sum(np.log2(1.0 + gains)))


def main():
    size = 2 * N_ANTENNAS
    config = HeteroSVDConfig(m=size, n=size, p_eng=8, p_task=1,
                             precision=1e-7)
    accel = HeteroSVDAccelerator(config)

    print(f"channel: {N_ANTENNAS}x{N_ANTENNAS} complex "
          f"(real embedding {size}x{size}), correlation 0.5")
    total_capacity = 0.0
    for slot in range(4):
        h = mimo_channel(N_ANTENNAS, N_ANTENNAS, correlation=0.5, seed=slot)
        result = accel.run(h, accumulate_v=True)

        # The real embedding duplicates each singular value; use one of
        # each pair as the per-eigen-beam gain.
        sigma = result.sigma[0::2]
        powers = waterfill(sigma, total_power=SNR_POWER)
        active = int(np.count_nonzero(powers))
        cap = capacity_bits(sigma, powers)
        total_capacity += cap

        # Sanity: U^T H V must be diagonal (the whole point of SVD
        # beamforming — streams do not interfere).
        effective = result.u.T @ h @ result.v
        off_diag = np.max(np.abs(effective - np.diag(np.diag(effective))))
        print(f"slot {slot}: {result.iterations} sweeps, "
              f"{active}/{N_ANTENNAS} beams active, "
              f"capacity {cap:.1f} bit/s/Hz, "
              f"interference {off_diag:.1e}")

    print(f"mean capacity: {total_capacity / 4:.1f} bit/s/Hz")

    # Does this design point meet the real-time deadline?
    latency = TimingSimulator(config).simulate(1).latency
    verdict = "MEETS" if latency < COHERENCE_DEADLINE_S else "MISSES"
    print(f"modelled SVD latency {latency * 1e6:.1f} us — {verdict} the "
          f"{COHERENCE_DEADLINE_S * 1e6:.0f} us coherence deadline")


if __name__ == "__main__":
    main()
