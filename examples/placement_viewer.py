"""Visualize the AIE placement of a HeteroSVD design (Fig. 5) as ASCII.

Renders the 8x50 VCK190 AIE array with each tile's role — orth-AIE,
norm-AIE, mem-AIE, idle — for a chosen ``(P_eng, P_task)`` design, plus
the per-task lane map and the DMA-traffic summary of the co-design.

Run:  python examples/placement_viewer.py [p_eng] [p_task]
"""

import sys

from repro import HeteroSVDConfig, place
from repro.core.dataflow import DataflowMode
from repro.core.ordering_codesign import (
    MovementSchedule,
    codesign_dma_transfers,
    traditional_dma_transfers,
)
from repro.versal.tile import TileKind

GLYPH = {
    TileKind.ORTH: "O",
    TileKind.NORM: "N",
    TileKind.MEM: "M",
    TileKind.IDLE: ".",
}


def main():
    p_eng = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    p_task = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    n = 256 if 256 % p_eng == 0 else (256 // p_eng + 1) * p_eng
    config = HeteroSVDConfig(m=256, n=n, p_eng=p_eng, p_task=p_task)
    placement = place(config)
    array = placement.array

    print(f"AIE placement: P_eng={p_eng}, P_task={p_task} "
          f"({placement.num_aie} tiles, "
          f"{placement.aie_utilization() * 100:.1f}% of the array)")
    print("legend: O = orth-AIE, N = norm-AIE, M = mem-AIE, . = idle\n")

    # Row 7 at the top, row 0 (shim-adjacent) at the bottom.
    for row in range(array.rows - 1, -1, -1):
        cells = "".join(
            GLYPH[array.tile(row, col).kind] for col in range(array.cols)
        )
        print(f"row {row}: {cells}")

    print("\nper-task summary:")
    for task in placement.tasks:
        lanes = ", ".join(
            f"cols {first}-{first + width - 1}" for first, width in task.lanes
        )
        print(f"  task {task.task}: {task.n_orth} orth + {task.n_norm} norm "
              f"+ {task.n_mem} mem in lanes [{lanes}]")

    k = config.p_eng
    schedule = MovementSchedule(k=k, shifting=True)
    print(
        f"\nco-design DMA traffic per block-pair sweep (k={k}): "
        f"{schedule.dma_count(DataflowMode.RELOCATED)} "
        f"(= 2(k-1) = {codesign_dma_transfers(k)}) vs traditional "
        f"{traditional_dma_transfers(k)} (= 2k(k-1))"
    )


if __name__ == "__main__":
    main()
