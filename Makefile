# Developer entry points for the HeteroSVD reproduction.

PYTHON ?= python

.PHONY: install test bench validate examples all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

validate:
	$(PYTHON) -m repro.validation

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/mimo_beamforming.py
	$(PYTHON) examples/recommender.py
	$(PYTHON) examples/doa_estimation.py
	$(PYTHON) examples/subspace_tracking.py
	$(PYTHON) examples/precision_study.py
	$(PYTHON) examples/placement_viewer.py
	$(PYTHON) examples/image_compression.py
	$(PYTHON) examples/energy_analysis.py
	$(PYTHON) examples/dse_explorer.py 256 100
	$(PYTHON) examples/paper_reproduction.py

all: test bench validate

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
