# Developer entry points for the HeteroSVD reproduction.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test bench bench-smoke baselines serve-smoke chaos-serve dse-chaos microbench validate examples lint smoke guard-smoke ci all clean

BASELINE_DIR := benchmarks/baselines

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -x -q

# Full regression harness: every suite at default size, reports written
# to the repo root and compared against any previous BENCH_*.json.
bench:
	$(PYTHON) -m repro.cli bench --suite solver --repeat 3
	$(PYTHON) -m repro.cli bench --suite dse
	$(PYTHON) -m repro.cli bench --suite scheduler
	$(PYTHON) -m repro.cli bench --suite batch

# Seconds-long CI variant: tiny sizes, schema check on the artifacts,
# and an advisory comparison against the blessed baselines (exit 3 —
# regression past threshold — is reported but tolerated, because the
# baselines were recorded on a different machine).
bench-smoke:
	$(PYTHON) -m repro.cli bench --suite solver --size 48 --out . \
		--baseline $(BASELINE_DIR)/BENCH_solver.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite dse --size 48 --out . \
		--baseline $(BASELINE_DIR)/BENCH_dse.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite scheduler --size 64 --out . \
		--baseline $(BASELINE_DIR)/BENCH_scheduler.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite batch --size 16 --out . \
		--baseline $(BASELINE_DIR)/BENCH_batch.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite serve --size 64 --out . \
		--baseline $(BASELINE_DIR)/BENCH_serve.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite chaos --size 48 --out . \
		--baseline $(BASELINE_DIR)/BENCH_chaos.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite workloads --size 48 --out . \
		--baseline $(BASELINE_DIR)/BENCH_workloads.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --suite dse_sharded --size 32 --out . \
		--baseline $(BASELINE_DIR)/BENCH_dse_sharded.json --threshold 0.5; \
		test $$? -eq 0 -o $$? -eq 3
	$(PYTHON) -m repro.cli bench --check BENCH_solver.json
	$(PYTHON) -m repro.cli bench --check BENCH_dse.json
	$(PYTHON) -m repro.cli bench --check BENCH_scheduler.json
	$(PYTHON) -m repro.cli bench --check BENCH_batch.json
	$(PYTHON) -m repro.cli bench --check BENCH_serve.json
	$(PYTHON) -m repro.cli bench --check BENCH_chaos.json
	$(PYTHON) -m repro.cli bench --check BENCH_workloads.json
	$(PYTHON) -m repro.cli bench --check BENCH_dse_sharded.json

# Re-record the blessed baselines (commit the result deliberately).
baselines:
	mkdir -p $(BASELINE_DIR)
	$(PYTHON) -m repro.cli bench --suite solver --size 48 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite dse --size 48 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite scheduler --size 64 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite batch --size 16 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite serve --size 64 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite chaos --size 48 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite workloads --size 48 --out $(BASELINE_DIR) --no-compare
	$(PYTHON) -m repro.cli bench --suite dse_sharded --size 32 --out $(BASELINE_DIR) --no-compare

# Serving-layer smoke: real daemon subprocess, 200-request wire-driven
# mix (deadline + oversized probes), counter assertions, then the
# in-process >=1k-queued acceptance burst.  Same script CI runs.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py --out .

# Chaos soak: real daemon subprocess under the committed serve_chaos
# fault plan, exactly-once/zero-stranded/error-budget invariants,
# graceful drain (exit 0), then the BENCH_chaos.json artifact.  Same
# script CI runs.
chaos-serve:
	$(PYTHON) tools/chaos_soak.py --out .

# Sharded-DSE chaos: 3-shard CLI sweep, SIGKILL one shard mid-chunk,
# assert lease reclaim + work stealing + corrupt-ledger quarantine +
# merged-frontier parity with the serial sweep.  Same script CI runs.
dse-chaos:
	$(PYTHON) tools/dse_chaos.py

# pytest-benchmark microbenchmarks (kernel-level timings).
microbench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

validate:
	$(PYTHON) -m repro.validation

# Fast fail-first gate: byte-compile everything, then ruff when available
# (the offline dev container does not ship it; CI installs it).
lint:
	$(PYTHON) -m compileall -q src benchmarks examples tests tools
	$(PYTHON) tools/check_doc_links.py
	$(PYTHON) tools/check_docstrings.py
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src benchmarks examples tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi

# Exercise the parallel execution path end-to-end on a tiny grid.
smoke:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro.cli dse --size 64 --jobs 2 --cache .repro_cache --top 3
	$(PYTHON) -m repro.cli dse --size 64 --jobs 2 --cache .repro_cache --top 3
	$(PYTHON) -m repro.cli svd --size 32 --p-eng 4 --batch 4 --jobs 2 --precision 1e-4
	$(PYTHON) -m repro.cli sensitivity --size 128 --jobs 2
	$(PYTHON) -m repro.cli profile --size 64 --jobs 2 --cache .repro_cache
	$(PYTHON) -m repro.cli svd --size 32 --p-eng 4 --batch 4 --p-task 2 --precision 1e-4 \
		--fault-plan examples/fault_plans/chaos_smoke.json --retries 2
	$(PYTHON) -m repro.cli dse --size 64 --top 3 \
		--fault-plan examples/fault_plans/chaos_smoke.json --retries 2

# Adversarial-input and deadline smoke: a NaN matrix must exit 4 with
# InputValidationError, a deadline-bounded DSE must exit 5 and then
# resume from its checkpoint, and invariant checking must pass on a
# healthy solve.
guard-smoke:
	$(PYTHON) -c "import numpy as np; a = np.eye(16); a[3, 4] = np.nan; np.save('guard_nan.npy', a)"
	$(PYTHON) -m repro.cli svd --input guard_nan.npy; test $$? -eq 4
	rm -f guard_ck.json
	$(PYTHON) -m repro.cli dse --size 64 --deadline 0.001 --checkpoint guard_ck.json; test $$? -eq 5
	$(PYTHON) -m repro.cli dse --size 64 --top 3 --checkpoint guard_ck.json --resume
	$(PYTHON) -m repro.cli svd --size 32 --p-eng 4 --check-invariants --deadline 60
	rm -f guard_nan.npy guard_ck.json

# Reproduce the GitHub Actions pipeline locally.
ci: lint test smoke guard-smoke serve-smoke chaos-serve dse-chaos

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/mimo_beamforming.py
	$(PYTHON) examples/recommender.py
	$(PYTHON) examples/doa_estimation.py
	$(PYTHON) examples/subspace_tracking.py
	$(PYTHON) examples/precision_study.py
	$(PYTHON) examples/placement_viewer.py
	$(PYTHON) examples/image_compression.py
	$(PYTHON) examples/energy_analysis.py
	$(PYTHON) examples/dse_explorer.py 256 100
	$(PYTHON) examples/paper_reproduction.py

all: test bench validate

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .ruff_cache .repro_cache src/repro.egg-info
