"""Load-generator tests: mix determinism, percentiles, end-to-end runs."""

import math

import pytest

from repro.serve import AdmissionPolicy, ServeConfig, build_mix, percentile
from repro.serve.loadgen import (
    MIX_SHAPES,
    PROBE_DEADLINE_S,
    PROBE_OVERSIZED_SHAPE,
    LoadReport,
    default_server_config,
    run_load,
)


class TestBuildMix:
    def test_deterministic(self):
        assert build_mix(50, seed=3) == build_mix(50, seed=3)
        assert build_mix(50, seed=3) != build_mix(50, seed=4)

    def test_embeds_probes(self):
        docs = build_mix(30)
        deadlines = [d for d in docs if d["deadline_s"] == PROBE_DEADLINE_S]
        oversized = [
            d for d in docs if d["shape"] == list(PROBE_OVERSIZED_SHAPE)
        ]
        assert len(deadlines) == 1
        assert len(oversized) == 1

    def test_small_mixes_skip_probes(self):
        docs = build_mix(4)
        assert all(d["deadline_s"] != PROBE_DEADLINE_S for d in docs)

    def test_cycles_shapes_and_tenants(self):
        docs = build_mix(len(MIX_SHAPES))
        assert {tuple(d["shape"]) for d in docs} == set(MIX_SHAPES)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_mix(0)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_empty_is_nan(self):
        # Regression: an empty sample used to report 0.0, which made a
        # burst with zero responses look like a perfect-latency run.
        assert math.isnan(percentile([], 99))
        assert math.isnan(percentile([], 50))

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestRunLoad:
    def test_in_process_burst_accounts_for_every_request(self):
        report = run_load(count=24, connections=4, seed=1)
        assert report.total == 24
        answered = (report.ok + report.rejected +
                    report.deadline_expired + report.errors)
        assert answered == 24
        assert report.errors == 0
        assert report.deadline_expired >= 1   # the over-deadline probe
        assert report.shed >= 1               # the oversized probe
        assert report.degraded >= report.shed
        metrics = report.metrics()
        assert metrics["p99_latency_s"] >= metrics["p50_latency_s"] > 0
        assert metrics["throughput_rps"] > 0
        assert 0 <= metrics["shed_rate"] <= 1

    def test_metrics_are_bench_compatible_scalars(self):
        report = run_load(count=12, connections=2, seed=2)
        for key, value in report.metrics().items():
            # None (JSON null) is the "not measurable" marker for
            # latency aggregates; the bench schema accepts it.
            assert isinstance(value, (int, float, str, type(None))), key
        assert report.metrics()["p50_latency_s"] is not None

    def test_default_config_scales_high_water(self):
        small = default_server_config(200)
        big = default_server_config(1200)
        assert small.admission.high_water == 100
        assert big.admission.high_water == 1024
        assert big.admission.max_depth >= 1264

    def test_explicit_docs_override_mix(self):
        docs = [
            {"op": "decompose", "id": f"d-{i}", "shape": [16, 16],
             "seed": i, "deadline_s": 60.0}
            for i in range(6)
        ]
        report = run_load(docs=docs, connections=2)
        assert report.total == 6
        assert report.ok == 6
        assert report.degraded == 0

    def test_empty_report_latencies_are_null(self):
        report = LoadReport(total=0, wall_s=0.0)
        metrics = report.metrics()
        assert metrics["p50_latency_s"] is None
        assert metrics["p99_latency_s"] is None
        assert metrics["max_latency_s"] is None

    def test_zero_ok_burst_fails_the_serve_suite(self, monkeypatch):
        # bench --suite serve must fail loudly, not record nulls as a
        # baseline, when no request succeeded.
        from repro.bench import suites
        from repro.errors import BenchmarkError

        dead = LoadReport(total=8, wall_s=0.1, errors=8)

        monkeypatch.setattr(
            "repro.serve.loadgen.run_load",
            lambda *args, **kwargs: dead,
        )
        (case,) = suites.build_suite("serve", 8)
        with pytest.raises(BenchmarkError, match="no successful"):
            case.fn(0)


def test_run_load_respects_server_config():
    # A tiny high-water mark forces shedding even on a small burst.
    config = ServeConfig(
        admission=AdmissionPolicy(max_depth=256, high_water=1),
        tenant_weights={"alpha": 2.0},
    )
    report = run_load(count=16, connections=4, seed=5,
                      server_config=config)
    answered = (report.ok + report.rejected +
                report.deadline_expired + report.errors)
    assert answered == 16
    assert report.errors == 0


class TestTimeoutAccounting:
    def test_dropped_response_is_a_counted_timeout(self):
        from repro.resilience import FaultPlan, FaultSpec

        docs = [
            {"op": "decompose", "id": f"t-{i}", "shape": [16, 16],
             "seed": i, "deadline_s": 60.0}
            for i in range(4)
        ]
        plan = FaultPlan(faults=[
            FaultSpec(site="serve.response_drop", at=(3,)),
        ])
        with plan.activate():
            report = run_load(docs=docs, connections=1,
                              request_timeout_s=2.0)
        answered = (report.ok + report.rejected +
                    report.deadline_expired + report.errors)
        assert report.total == 4
        assert report.timeout == 1
        assert report.duplicates == 0
        assert answered + report.timeout == report.total
        assert report.ok == 3
        metrics = report.metrics()
        assert metrics["timeout"] == 1
        assert metrics["duplicates"] == 0

    def test_report_metrics_expose_timeout_and_duplicate_keys(self):
        metrics = LoadReport(total=0, wall_s=0.0).metrics()
        assert metrics["timeout"] == 0
        assert metrics["duplicates"] == 0
