"""Chaos-hardening tests: serve fault sites, breaker, supervision, drain.

Every scenario drives a real daemon (:class:`repro.serve.ServerThread`)
with a seeded :class:`~repro.resilience.FaultPlan` active, so the
injected failure sequence — and therefore the recovery trajectory the
test pins — is deterministic.
"""

import socket
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ServeConnectionError, ServeProtocolError
from repro.resilience import CircuitBreaker, FaultPlan, FaultSpec
from repro.resilience.faults import load_fault_plan, registered_sites
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import decode_line, encode
from repro.serve.server import (
    SERVE_FAULT_SITES,
    SVDServer,
    _STRATEGY_DEMOTION,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _wait_stats(probe, predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate(probe.stats()):
            return True
        time.sleep(0.01)
    return False


class TestFaultSites:
    def test_serve_sites_are_registered(self):
        valid = registered_sites()
        for site in SERVE_FAULT_SITES:
            assert site in valid

    def test_committed_serve_chaos_plan_loads(self):
        plan = load_fault_plan(
            REPO_ROOT / "examples" / "fault_plans" / "serve_chaos.json"
        )
        assert plan.seed == 11
        assert set(plan.specs) == set(SERVE_FAULT_SITES)

    def test_committed_chaos_smoke_plan_still_loads(self):
        plan = load_fault_plan(
            REPO_ROOT / "examples" / "fault_plans" / "chaos_smoke.json"
        )
        assert plan.specs


class TestEngineFault:
    def test_without_retries_answers_internal(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.engine_fault",
                                           at=(0,))])
        with ServerThread(ServeConfig(retries=0)) as handle:
            with plan.activate():
                with ServeClient(*handle.address) as client:
                    with pytest.raises(ServeProtocolError,
                                       match="injected engine fault"):
                        client.decompose(shape=[16, 16], seed=3)
                    # The daemon is still alive and serving.
                    response = client.decompose(shape=[16, 16], seed=3)
                    assert response["degraded"] is False
                    stats = client.stats()
        assert stats["serve.internal_errors"] == 1
        assert stats.get("serve.requeued_batches", 0) == 0

    def test_with_retries_requeues_once_and_stays_byte_identical(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.engine_fault",
                                           at=(0,))])
        with ServerThread(ServeConfig(retries=1)) as handle:
            with ServeClient(*handle.address) as client:
                baseline = client.decompose(shape=[16, 16], seed=3)
                with plan.activate():
                    retried = client.decompose(shape=[16, 16], seed=3)
                stats = client.stats()
        # The transient failure was absorbed by one requeue: same
        # engine tier, same bytes, no client-visible error.
        assert retried["degraded"] is False
        assert np.asarray(retried["sigma"]).tobytes() == np.asarray(
            baseline["sigma"]
        ).tobytes()
        assert stats["serve.requeued_batches"] == 1
        assert stats["serve.requeued_jobs"] == 1
        assert stats.get("serve.internal_errors", 0) == 0

    def test_second_failure_of_requeued_batch_is_final(self):
        # Requeue is one-shot: a batch that fails again is answered
        # internal, not spun forever.
        plan = FaultPlan(faults=[FaultSpec(site="serve.engine_fault",
                                           at=(0, 1))])
        with ServerThread(ServeConfig(retries=1)) as handle:
            with plan.activate():
                with ServeClient(*handle.address) as client:
                    with pytest.raises(ServeProtocolError,
                                       match="injected engine fault"):
                        client.decompose(shape=[16, 16], seed=3)
                    stats = client.stats()
        assert stats["serve.requeued_batches"] == 1
        assert stats["serve.internal_errors"] == 1


class TestCircuitBreaker:
    def test_demotion_ladder(self):
        assert _STRATEGY_DEMOTION["native"] == "vectorized"
        assert _STRATEGY_DEMOTION["vectorized"] is None

    def test_select_strategy_walks_native_to_vectorized_to_brownout(self):
        server = SVDServer(ServeConfig(breaker_threshold=1))
        server._strategy_breaker("native").record_failure()
        # Native is tripped: the ladder lands on vectorized, which has
        # no breaker yet.
        assert server._select_strategy("native") == ("vectorized", None)
        server._strategy_breaker("vectorized").record_failure()
        # Both engine tiers tripped: (None, None) sends the batch to
        # the brownout tier.
        assert server._select_strategy("native") == (None, None)

    def test_trips_demotes_to_brownout_and_recovers_via_probe(self):
        # The whole trajectory — trip after `breaker_threshold`
        # failures, browned-out service while open, seeded half-open
        # probe, recovery — must replay exactly what a twin breaker
        # with the same (name, seed) predicts.
        config = ServeConfig(breaker_threshold=2, breaker_probe_after=2,
                             retries=0)
        plan = FaultPlan(faults=[FaultSpec(site="serve.engine_fault",
                                           at=(0, 1))])
        twin = CircuitBreaker("serve.engine.vectorized",
                              failure_threshold=2, probe_after=2)
        twin.record_failure()
        twin.record_failure()
        assert twin.state == "open"
        predicted_brownouts = 0
        while not twin.allow():
            predicted_brownouts += 1
        assert predicted_brownouts >= 1

        with ServerThread(config) as handle:
            with ServeClient(*handle.address) as client:
                with plan.activate():
                    for _ in range(2):
                        with pytest.raises(ServeProtocolError,
                                           match="injected engine fault"):
                            client.decompose(shape=[16, 16], seed=5,
                                             strategy="vectorized")
                # Plan exhausted/inactive: every further failure or
                # success is the breaker's own doing.
                trajectory = [
                    client.decompose(shape=[16, 16], seed=5,
                                     strategy="vectorized")["degraded"]
                    for _ in range(predicted_brownouts + 1)
                ]
                stats = client.stats()
        # Open breaker → brownout tier (degraded) for exactly the
        # predicted number of requests, then the half-open probe runs
        # the engine again and recovers it.
        assert trajectory == [True] * predicted_brownouts + [False]
        assert stats["serve.breaker_trips"] == 1
        assert stats["serve.breaker_browned_out"] == predicted_brownouts
        assert stats["serve.breaker_probes"] == 1
        assert stats["serve.breaker_recoveries"] == 1

    def test_failed_probe_reopens_then_second_probe_recovers(self):
        config = ServeConfig(breaker_threshold=1, breaker_probe_after=1,
                             retries=0)
        # Twin breaker (same name/seed/knobs) predicts the exact
        # brownout counts before each probe — the seeded schedule is a
        # pure function of (name, seed).
        twin = CircuitBreaker("serve.engine.vectorized",
                              failure_threshold=1, probe_after=1)
        twin.record_failure()  # trip
        before_first_probe = 0
        while not twin.allow():
            before_first_probe += 1
        twin.record_failure()  # the probe fails: reopened
        before_second_probe = 0
        while not twin.allow():
            before_second_probe += 1

        # Fail the first attempt and the first probe attempt; the
        # second probe (engine attempt #2) runs clean.
        plan = FaultPlan(faults=[FaultSpec(site="serve.engine_fault",
                                           at=(0, 1))])

        def ask(client):
            return client.decompose(shape=[16, 16], seed=5,
                                    strategy="vectorized")

        with ServerThread(config) as handle:
            with ServeClient(*handle.address) as client:
                with plan.activate():
                    with pytest.raises(ServeProtocolError,
                                       match="injected engine fault"):
                        ask(client)  # trips the breaker
                    first_wave = [
                        ask(client) for _ in range(before_first_probe)
                    ]
                    # The first probe; the second injected fault fails
                    # it, re-opening the breaker.
                    with pytest.raises(ServeProtocolError,
                                       match="injected engine fault"):
                        ask(client)
                    second_wave = [
                        ask(client) for _ in range(before_second_probe)
                    ]
                    # The second probe runs clean and recovers the tier.
                    recovered = ask(client)
                    stats = client.stats()
        assert all(r["degraded"] for r in first_wave + second_wave)
        assert recovered["degraded"] is False
        assert stats["serve.breaker_trips"] == 1
        assert stats["serve.breaker_reopened"] == 1
        assert stats["serve.breaker_probes"] == 2
        assert stats["serve.breaker_recoveries"] == 1


class TestDispatcherSupervision:
    def test_crash_answers_orphans_and_restarts(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.compute_crash",
                                           at=(0,))])
        with ServerThread(ServeConfig()) as handle:
            with plan.activate():
                with ServeClient(*handle.address) as client:
                    # The in-flight batch is orphaned by the injected
                    # crash but still answered — exactly once, with a
                    # structured internal error.
                    with pytest.raises(ServeProtocolError,
                                       match="dispatcher crashed"):
                        client.decompose(shape=[16, 16], seed=7)
                    # The supervisor restarted the loop: the daemon
                    # keeps serving.
                    response = client.decompose(shape=[16, 16], seed=7)
                    assert response["degraded"] is False
                    stats = client.stats()
        assert stats["serve.dispatcher_restarts"] == 1
        assert stats["serve.orphaned"] == 1


class TestResponseFaults:
    def test_response_drop_strands_no_state(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.response_drop",
                                           at=(0,))])
        with ServerThread(ServeConfig()) as handle:
            host, port = handle.address
            with plan.activate():
                dropped = ServeClient(host, port, timeout=1.5)
                with pytest.raises(ServeConnectionError):
                    dropped.decompose(shape=[16, 16], seed=2)
                dropped.close()
                with ServeClient(host, port) as probe:
                    assert _wait_stats(
                        probe,
                        lambda s: s.get("serve.responses_dropped", 0) == 1,
                    )
                    # The daemon took no damage: same request, answered.
                    assert probe.decompose(
                        shape=[16, 16], seed=2
                    )["degraded"] is False

    def test_slow_write_delays_but_answers(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.slow_write",
                                           at=(0,), param=0.3)])
        with ServerThread(ServeConfig()) as handle:
            with plan.activate():
                with ServeClient(*handle.address) as client:
                    begin = time.monotonic()
                    response = client.decompose(shape=[16, 16], seed=2)
                    elapsed = time.monotonic() - begin
                    stats = client.stats()
        assert response["degraded"] is False
        assert elapsed >= 0.25
        assert stats["serve.slow_writes"] == 1

    def test_accept_drop_swallows_the_request(self):
        plan = FaultPlan(faults=[FaultSpec(site="serve.accept_drop",
                                           at=(0,))])
        with ServerThread(ServeConfig()) as handle:
            host, port = handle.address
            with plan.activate():
                swallowed = ServeClient(host, port, timeout=1.5)
                with pytest.raises(ServeConnectionError):
                    swallowed.decompose(shape=[16, 16], seed=2)
                swallowed.close()
                with ServeClient(host, port) as probe:
                    stats = probe.stats()
        assert stats["serve.requests_dropped"] == 1
        # The request never reached the queue or the engine.
        assert stats.get("serve.batches", 0) == 0


def _park_pool(server_thread):
    import threading

    release = threading.Event()
    server_thread.server._pool.submit(release.wait)
    return release


def _send_decompose(address, request_id, shape, seed):
    """Open a raw connection, send one decompose, return the socket."""
    sock = socket.create_connection(address, timeout=30)
    sock.sendall(encode({
        "op": "decompose", "id": request_id,
        "shape": list(shape), "seed": seed, "deadline_s": 60.0,
    }))
    return sock


class TestGracefulDrain:
    def test_drain_closes_admission_finishes_work_and_exits(self):
        handle = ServerThread(ServeConfig(drain_deadline_s=30.0)).start()
        host, port = handle.address
        release = _park_pool(handle)
        pending = None
        try:
            # One admitted job, held in flight by the parked pool.
            pending = _send_decompose((host, port), "d-pending",
                                      (16, 16), 4)
            with ServeClient(host, port) as probe:
                # Popped from the queue = provably in flight behind
                # the parked pool.
                assert _wait_stats(
                    probe,
                    lambda s: (s.get("serve.requests", 0) >= 1
                               and s["queue_depth"] == 0),
                )
                probe.drain()
            # Admission is now closed: a fresh decompose is rejected
            # with code="draining" and a positive retry_after_s hint.
            with ServeClient(host, port) as rejected:
                envelope = rejected.request({
                    "op": "decompose", "id": "d-late",
                    "shape": [16, 16], "seed": 9,
                })
                assert envelope["ok"] is False
                assert envelope["error"]["code"] == "draining"
                assert 0 < envelope["error"]["retry_after_s"] <= 30.0
                stats = rejected.stats()
                assert stats["draining"] == 1
                assert stats["serve.drained_rejects"] == 1
                assert stats["serve.drains"] == 1
            # Release the pool: the in-flight job finishes normally...
            release.set()
            response = decode_line(pending.makefile("rb").readline())
            assert response["id"] == "d-pending"
            assert response["ok"] is True
            assert response["degraded"] is False
            # ...and the drained daemon exits on its own.
            deadline = time.monotonic() + 10.0
            while handle._thread.is_alive():
                assert time.monotonic() < deadline, (
                    "daemon did not exit after draining"
                )
                time.sleep(0.02)
        finally:
            release.set()
            if pending is not None:
                pending.close()
            handle.stop()

    def test_expired_drain_deadline_sheds_leftovers(self):
        handle = ServerThread(ServeConfig(drain_deadline_s=0.2)).start()
        host, port = handle.address
        release = _park_pool(handle)
        first = second = None
        try:
            # Two different coalescing keys: the first batch goes in
            # flight (behind the parked pool), the second stays queued.
            first = _send_decompose((host, port), "d-first", (16, 16), 4)
            with ServeClient(host, port) as probe:
                assert _wait_stats(
                    probe,
                    lambda s: (s.get("serve.requests", 0) >= 1
                               and s["queue_depth"] == 0),
                )
            second = _send_decompose((host, port), "d-second", (24, 24), 5)
            with ServeClient(host, port) as probe:
                assert _wait_stats(
                    probe, lambda s: s.get("serve.requests", 0) >= 2
                )
                probe.drain()
            time.sleep(0.3)  # burn the whole drain budget
            release.set()
            # The in-flight batch still completes normally; the queued
            # leftover is answered code="shutdown", not stranded.
            first_response = decode_line(first.makefile("rb").readline())
            assert first_response["ok"] is True
            second_response = decode_line(second.makefile("rb").readline())
            assert second_response["ok"] is False
            assert second_response["error"]["code"] == "shutdown"
            deadline = time.monotonic() + 10.0
            while handle._thread.is_alive():
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            release.set()
            for sock in (first, second):
                if sock is not None:
                    sock.close()
            handle.stop()
