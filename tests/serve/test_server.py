"""End-to-end server tests over a real loopback socket.

Each test hosts the daemon with :class:`repro.serve.ServerThread` and
talks to it with :class:`repro.serve.ServeClient` or a raw socket.
Timing-sensitive scenarios (deadline expiry in queue, overload
rejection) are made deterministic by first parking a slow engine job
on the single compute thread, so subsequent jobs provably sit in the
queue for the duration.
"""

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    ServeProtocolError,
    ServiceOverloadError,
)
from repro.linalg import svd
from repro.serve import (
    AdmissionPolicy,
    ServeClient,
    ServeConfig,
    ServerThread,
)
from repro.serve.protocol import decode_line, encode
from repro.workloads.matrices import random_matrix


@pytest.fixture()
def server():
    with ServerThread(ServeConfig()) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as handle:
        yield handle


def _raw_exchange(address, *lines):
    """Send raw byte lines, return one decoded response per line."""
    with socket.create_connection(address, timeout=30) as sock:
        handle = sock.makefile("rb")
        for line in lines:
            sock.sendall(line)
        return [decode_line(handle.readline()) for _ in lines]


def _park_slow_job(address, results):
    """Occupy the compute thread with a big engine-tier decompose."""
    def work():
        with ServeClient(*address) as slow:
            results.append(slow.decompose(shape=[96, 96], seed=1))

    thread = threading.Thread(target=work)
    thread.start()
    return thread


def _park_pool(server_thread):
    """Deterministically park the daemon's compute thread.

    Returns a ``threading.Event``; until it is set, every admitted job
    provably stays queued (or in flight, for the oversized tier) —
    no reliance on a 'slow enough' decompose.
    """
    release = threading.Event()
    server_thread.server._pool.submit(release.wait)
    return release


def _wait_stats(probe, predicate, timeout=10.0):
    """Poll the ``stats`` op until ``predicate(stats)`` holds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate(probe.stats()):
            return True
        time.sleep(0.01)
    return False


class TestByteIdentity:
    def test_seeded_result_byte_identical_to_serial_svd(self, client):
        for seed, shape in [(3, (16, 16)), (11, (24, 24)), (5, (32, 16))]:
            response = client.decompose(shape=shape, seed=seed)
            assert response["degraded"] is False
            assert response["shed"] is False
            local = svd(
                random_matrix(*shape, seed=seed),
                method="block", block_width=4, precision=1e-6,
                strategy="auto",
            ).singular_values
            wire = np.asarray(response["sigma"], dtype=np.float64)
            assert wire.tobytes() == np.asarray(
                local, dtype=np.float64
            ).tobytes()

    def test_inline_matrix_byte_identical(self, client):
        matrix = random_matrix(8, 8, seed=42)
        response = client.decompose(matrix=matrix.tolist())
        local = svd(
            matrix, method="block", block_width=4, precision=1e-6,
            strategy="auto",
        ).singular_values
        assert np.asarray(response["sigma"]).tobytes() == np.asarray(
            local, dtype=np.float64
        ).tobytes()

    def test_coalesced_batch_matches_one_at_a_time(self, server):
        # Same-key requests from several connections coalesce into one
        # executor batch; every answer must still be byte-identical to
        # its own serial svd() call.
        seeds = list(range(6))
        responses = {}
        errors = []

        def ask(seed):
            try:
                with ServeClient(*server.address) as c:
                    responses[seed] = c.decompose(shape=[16, 16], seed=seed)
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=ask, args=(s,)) for s in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for seed in seeds:
            local = svd(
                random_matrix(16, 16, seed=seed),
                method="block", block_width=4, precision=1e-6,
                strategy="auto",
            ).singular_values
            assert np.asarray(
                responses[seed]["sigma"]
            ).tobytes() == np.asarray(local, dtype=np.float64).tobytes()


class TestMethodField:
    def test_explicit_block_byte_identical_to_default(self, client):
        # Requests that spell out method="block" must coalesce with —
        # and answer identically to — requests that omit the field.
        default = client.decompose(shape=[16, 16], seed=3)
        explicit = client.decompose(shape=[16, 16], seed=3,
                                    method="block")
        assert np.asarray(default["sigma"]).tobytes() == np.asarray(
            explicit["sigma"]
        ).tobytes()

    @pytest.mark.parametrize("method", ["tsqr", "dnc", "streaming",
                                        "hestenes"])
    def test_alternate_methods_match_lapack(self, client, method):
        matrix = random_matrix(32, 16, seed=8)
        response = client.decompose(matrix=matrix.tolist(),
                                    method=method)
        assert response["degraded"] is False
        reference = np.linalg.svd(matrix, compute_uv=False)
        sigma = np.asarray(response["sigma"])[: len(reference)]
        np.testing.assert_allclose(sigma, reference, atol=1e-6)

    def test_unknown_method_answered_schema(self, client):
        from repro.errors import ServeProtocolError

        with pytest.raises(ServeProtocolError, match="method"):
            client.decompose(shape=[16, 16], seed=1, method="qr")


class TestBrownoutTier:
    def test_oversized_request_is_shed_and_degraded(self):
        config = ServeConfig(
            admission=AdmissionPolicy(max_cells=256, reject_cells=100_000)
        )
        with ServerThread(config) as handle:
            with ServeClient(*handle.address) as client:
                response = client.decompose(shape=[32, 32], seed=2)
                assert response["degraded"] is True
                assert response["shed"] is True
                reference = np.linalg.svd(
                    random_matrix(32, 32, seed=2), compute_uv=False
                )
                np.testing.assert_allclose(
                    np.asarray(response["sigma"]), reference,
                    rtol=1e-10, atol=1e-12,
                )
                stats = client.stats()
                assert stats["serve.shed"] == 1
                assert stats["serve.degraded"] == 1
                assert stats["serve.oversized"] == 1

    def test_beyond_hard_cap_rejected_oversized(self):
        config = ServeConfig(
            admission=AdmissionPolicy(max_cells=256, reject_cells=1024)
        )
        with ServerThread(config) as handle:
            with ServeClient(*handle.address) as client:
                with pytest.raises(ServiceOverloadError) as excinfo:
                    client.decompose(shape=[64, 64], seed=0)
                assert excinfo.value.code == "oversized"

    def test_huge_declared_shape_rejected_without_materialization(
        self, client
    ):
        # The declared shape names an ~80 GB matrix; the hard cap must
        # fire off the declaration, before any allocation happens.
        with pytest.raises(ServiceOverloadError) as excinfo:
            client.decompose(shape=[100_000, 100_000], seed=0)
        assert excinfo.value.code == "oversized"

    def test_oversized_inflight_cap_rejects_overloaded(self):
        # Oversized jobs never enter the queue, so they are admitted
        # against max_oversized instead: with the compute thread
        # parked and a cap of 1, the first oversized request goes in
        # flight and the rest must be refused code=overloaded.
        config = ServeConfig(admission=AdmissionPolicy(max_oversized=1))
        with ServerThread(config) as handle:
            release = _park_pool(handle)
            docs = [
                {"op": "decompose", "id": f"o-{i}",
                 "shape": [512, 256], "seed": i}
                for i in range(3)
            ]
            with socket.create_connection(
                handle.address, timeout=30
            ) as sock:
                reader = sock.makefile("rb")
                for doc in docs:
                    sock.sendall(encode(doc))
                # o-0 holds the single in-flight slot behind the
                # parked pool, so o-1 and o-2 are answered (refused)
                # first, in order.
                refused = [
                    decode_line(reader.readline()) for _ in range(2)
                ]
                assert [r["id"] for r in refused] == ["o-1", "o-2"]
                assert all(
                    r["error"]["code"] == "overloaded" for r in refused
                )
                release.set()
                served = decode_line(reader.readline())
                assert served["id"] == "o-0"
                assert served["ok"] is True
                assert served["degraded"] is True
                assert served["shed"] is True


class TestSloAndOverload:
    def test_queued_job_past_deadline_answered_deadline(self, server):
        results = []
        slow = _park_slow_job(server.address, results)
        try:
            with ServeClient(*server.address) as client:
                # The compute thread is busy for >> 1 ms, so this job's
                # budget provably expires while it waits in the queue.
                with pytest.raises(DeadlineExceeded):
                    client.decompose(shape=[16, 16], seed=9,
                                     deadline_s=0.001)
        finally:
            slow.join()
        assert results and results[0]["ok"]

    def test_full_queue_rejects_overloaded(self):
        config = ServeConfig(
            admission=AdmissionPolicy(max_depth=1, high_water=1)
        )
        with ServerThread(config) as handle:
            release = _park_pool(handle)
            results = []
            threads = []

            def ask(seed):
                with ServeClient(*handle.address) as client:
                    results.append(
                        client.decompose(shape=[16, 16], seed=seed)
                    )

            try:
                with ServeClient(*handle.address) as probe:
                    # Job A: admitted, popped by the dispatcher, stuck
                    # behind the parked pool.
                    threads.append(
                        threading.Thread(target=ask, args=(1,))
                    )
                    threads[-1].start()
                    assert _wait_stats(
                        probe,
                        lambda s: s["admitted"] >= 1
                        and s["queue_depth"] == 0,
                    )
                    # Job B: fills the single queue slot.
                    threads.append(
                        threading.Thread(target=ask, args=(2,))
                    )
                    threads[-1].start()
                    assert _wait_stats(
                        probe, lambda s: s["queue_depth"] == 1
                    )
                    with ServeClient(*handle.address) as overflow:
                        with pytest.raises(
                            ServiceOverloadError
                        ) as excinfo:
                            overflow.decompose(shape=[16, 16], seed=3)
                        assert excinfo.value.code == "overloaded"
            finally:
                release.set()
                for thread in threads:
                    thread.join()
        assert len(results) == 2 and all(r["ok"] for r in results)


class TestWireRejections:
    def test_non_json_line(self, server):
        (response,) = _raw_exchange(server.address, b"not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "schema"
        assert response["id"] is None

    def test_unknown_op(self, server):
        (response,) = _raw_exchange(
            server.address, encode({"op": "explode", "id": "x"})
        )
        assert response["error"]["code"] == "schema"
        assert response["id"] == "x"

    def test_missing_matrix_and_shape(self, server):
        (response,) = _raw_exchange(
            server.address, encode({"op": "decompose", "id": "x"})
        )
        assert response["error"]["code"] == "schema"

    def test_bad_block_width(self, server):
        (response,) = _raw_exchange(
            server.address,
            encode({"op": "decompose", "id": "x", "shape": [16, 16],
                    "block_width": 99}),
        )
        assert response["error"]["code"] == "schema"
        assert "block_width" in response["error"]["message"]

    def test_non_finite_matrix_rejected_invalid(self, server):
        (response,) = _raw_exchange(
            server.address,
            encode({"op": "decompose", "id": "x",
                    "matrix": [[1.0, 2.0], [3.0, None]]}),
        )
        # None materializes as NaN -> input validation, not schema.
        assert response["error"]["code"] in ("schema", "invalid")

    def test_client_raises_protocol_error_for_schema_answer(self, client):
        from repro.serve.client import raise_for_error

        envelope = client.request({"op": "decompose", "id": "x"})
        assert envelope["ok"] is False
        with pytest.raises(ServeProtocolError) as excinfo:
            raise_for_error(envelope)
        assert excinfo.value.code == "schema"


class TestManagementOps:
    def test_ping(self, client):
        response = client.ping()
        assert response["pong"] is True
        assert response["version"] == "1"

    def test_stats_reflect_traffic(self, client):
        client.decompose(shape=[16, 16], seed=0)
        stats = client.stats()
        assert stats["serve.requests"] == 1
        assert stats["admitted"] == 1
        assert stats["serve.batches"] == 1
        assert stats["version"] == "1"

    def test_shutdown_stops_the_server(self, server):
        with ServeClient(*server.address) as client:
            client.decompose(shape=[16, 16], seed=1)
            client.shutdown()
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
        # Double-stop is a no-op.
        server.stop()


def _loose_server():
    """A loop-less SVDServer for driving tier coroutines directly."""
    from repro.serve.server import SVDServer

    server = SVDServer(ServeConfig())
    server._loop = asyncio.get_running_loop()
    server._pool = ThreadPoolExecutor(max_workers=1)
    return server


def _loose_job(server, index, key):
    from repro.serve.queue import Job

    return Job(
        request_id=f"j{index}",
        tenant="t",
        key=key,
        matrix=random_matrix(key.m, key.n, seed=index),
        future=server._loop.create_future(),
    )


class TestTierInternals:
    def test_brownout_queue_time_excludes_batchmates_service(
        self, monkeypatch
    ):
        import repro.serve.server as server_mod
        from repro.serve.protocol import CoalesceKey

        real_sigma = server_mod._brownout_sigma

        def slow_sigma(matrix):
            time.sleep(0.05)
            return real_sigma(matrix)

        monkeypatch.setattr(server_mod, "_brownout_sigma", slow_sigma)
        key = CoalesceKey(8, 8, "float64", "auto", 4)

        async def run():
            server = _loose_server()
            try:
                jobs = [_loose_job(server, i, key) for i in range(3)]
                await server._run_brownout(jobs, shed=True)
                return [job.future.result() for job in jobs]
            finally:
                server._pool.shutdown(wait=True)

        responses = asyncio.run(run())
        assert all(r["degraded"] for r in responses)
        # Job 0 is dispatched immediately: the ~100 ms its batchmates
        # compute after it must not be booked as its queue time.
        assert responses[0]["queue_s"] < 0.05

    def test_engine_report_hole_answered_internal(self, monkeypatch):
        # A report missing a task's result must answer that job with
        # an internal error, not raise KeyError into the dispatcher.
        from types import SimpleNamespace

        import repro.exec.batch as batch_mod
        from repro.serve.protocol import CoalesceKey

        key = CoalesceKey(8, 8, "float64", "auto", 4)

        class HoleyExecutor:
            def __init__(self, *args, **kwargs):
                pass

            def run(self, batch, deadline=None):
                return SimpleNamespace(
                    results=[SimpleNamespace(
                        task_id=0, pipeline=0, degraded=False,
                        sigma=np.ones(8),
                    )],
                    wall_makespan=0.001,
                )

        monkeypatch.setattr(batch_mod, "BatchExecutor", HoleyExecutor)

        async def run():
            server = _loose_server()
            try:
                jobs = [_loose_job(server, i, key) for i in range(2)]
                await server._run_engine(jobs, key)
                return [job.future.result() for job in jobs]
            finally:
                server._pool.shutdown(wait=True)

        responses = asyncio.run(run())
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        assert responses[1]["error"]["code"] == "internal"


class TestConcurrentResponsesOnOneConnection:
    def test_pipelined_requests_all_answered(self, server):
        # Write several requests before reading anything; responses may
        # arrive in any order but every id must be answered exactly
        # once.
        docs = [
            {"op": "decompose", "id": f"p-{i}", "shape": [16, 16],
             "seed": i}
            for i in range(5)
        ]
        with socket.create_connection(server.address, timeout=60) as sock:
            handle = sock.makefile("rb")
            for doc in docs:
                sock.sendall(encode(doc))
            seen = set()
            for _ in docs:
                response = decode_line(handle.readline())
                assert response["ok"]
                seen.add(response["id"])
        assert seen == {doc["id"] for doc in docs}


class TestShutdownAndSideTasks:
    def test_drain_on_shutdown_answers_each_queued_job_exactly_once(self):
        from repro.serve.protocol import CoalesceKey

        key = CoalesceKey(8, 8, "float64", "auto", 4)

        async def run():
            server = _loose_server()
            try:
                jobs = [_loose_job(server, i, key) for i in range(3)]
                for job in jobs:
                    server.queue.push(job)
                # One job was already answered (e.g. by _fail_orphans
                # after a dispatcher crash): the drain must not touch
                # its settled future.
                jobs[1].future.set_result({"id": "j1", "ok": True})
                server._drain_on_shutdown()
                first = [job.future.result() for job in jobs]
                # Idempotent: the queue is empty and every future is
                # done, so a second drain changes nothing (a double
                # set_result would raise InvalidStateError).
                server._drain_on_shutdown()
                second = [job.future.result() for job in jobs]
                return first, second
            finally:
                server._pool.shutdown(wait=True)

        first, second = asyncio.run(run())
        assert first == second
        assert first[1]["ok"] is True
        for response in (first[0], first[2]):
            assert response["ok"] is False
            assert response["error"]["code"] == "shutdown"

    def test_spawn_tracks_then_discards_side_tasks(self):
        async def run():
            server = _loose_server()
            try:
                async def noop():
                    return 42

                task = server._spawn(noop())
                assert task in server._side_tasks
                assert await task == 42
                # Let the done-callback run.
                await asyncio.sleep(0)
                return len(server._side_tasks)
            finally:
                server._pool.shutdown(wait=True)

        assert asyncio.run(run()) == 0

    def test_stats_report_draining_flag(self, client):
        assert client.stats()["draining"] == 0
