"""Wire-protocol unit tests: codecs, schemas, rejection paths."""

import numpy as np
import pytest

from repro.errors import ServeProtocolError
from repro.serve.protocol import (
    ERROR_CODES,
    CoalesceKey,
    decode_line,
    encode,
    error_response,
    request_key,
    request_matrix,
    result_response,
    validate_request,
    validate_response,
)


def _decompose(**overrides):
    doc = {"op": "decompose", "id": "r-1", "shape": [16, 16], "seed": 3}
    doc.update(overrides)
    return doc


class TestCodec:
    def test_round_trip(self):
        doc = _decompose(tenant="alpha", deadline_s=2.0)
        assert decode_line(encode(doc)) == doc

    def test_encode_is_one_line(self):
        assert encode(_decompose()).count(b"\n") == 1

    def test_non_json_line_rejected(self):
        with pytest.raises(ServeProtocolError) as excinfo:
            decode_line(b"not json at all\n")
        assert excinfo.value.code == "schema"

    def test_non_object_line_rejected(self):
        with pytest.raises(ServeProtocolError) as excinfo:
            decode_line(b"[1, 2, 3]\n")
        assert excinfo.value.code == "schema"


class TestRequestValidation:
    def test_valid_seeded_request_passes(self):
        assert validate_request(_decompose()) is not None

    def test_valid_inline_request_passes(self):
        doc = {"op": "decompose", "id": "r", "matrix": [[1.0, 2.0],
                                                        [3.0, 4.0]]}
        validate_request(doc)

    @pytest.mark.parametrize("mutate", [
        {"op": "explode"},               # unknown op
        {"id": ""},                      # empty id
        {"shape": [16]},                 # wrong rank
        {"shape": [0, 16]},              # degenerate shape
        {"shape": [16, 1]},              # too narrow
        {"deadline_s": 0},               # non-positive deadline
        {"deadline_s": -1.0},
        {"block_width": 0},
        {"strategy": "quantum"},         # unknown strategy
        {"dtype": "int8"},               # unknown dtype
        {"seed": "seven"},               # wrong type
    ])
    def test_bad_fields_rejected(self, mutate):
        with pytest.raises(ServeProtocolError) as excinfo:
            validate_request(_decompose(**mutate))
        assert excinfo.value.code == "schema"

    def test_missing_id_rejected(self):
        doc = _decompose()
        del doc["id"]
        with pytest.raises(ServeProtocolError):
            validate_request(doc)

    def test_matrix_and_shape_mutually_exclusive(self):
        doc = _decompose(matrix=[[1.0, 2.0]])
        with pytest.raises(ServeProtocolError) as excinfo:
            validate_request(doc)
        assert "mutually exclusive" in str(excinfo.value)

    def test_decompose_needs_matrix_or_shape(self):
        doc = {"op": "decompose", "id": "r"}
        with pytest.raises(ServeProtocolError):
            validate_request(doc)

    def test_ragged_matrix_rejected(self):
        doc = {"op": "decompose", "id": "r",
               "matrix": [[1.0, 2.0], [3.0]]}
        with pytest.raises(ServeProtocolError) as excinfo:
            validate_request(doc)
        assert "ragged" in str(excinfo.value)

    def test_management_ops_need_no_matrix(self):
        for op in ("ping", "stats", "shutdown"):
            validate_request({"op": op, "id": "m"})


class TestResponseValidation:
    def test_result_envelope_round_trips(self):
        doc = result_response("r-1", np.array([3.0, 1.0]), degraded=False,
                              shed=False, queue_s=0.01, service_s=0.002)
        assert validate_response(decode_line(encode(doc))) == doc

    def test_error_envelope_round_trips(self):
        doc = error_response("r-1", "overloaded", "queue full")
        validate_response(decode_line(encode(doc)))

    def test_unknown_error_code_rejected_at_build(self):
        with pytest.raises(ValueError):
            error_response("r-1", "mystery", "???")

    def test_not_ok_without_error_object_rejected(self):
        with pytest.raises(ServeProtocolError):
            validate_response({"id": "r", "ok": False})

    def test_all_error_codes_buildable(self):
        for code in ERROR_CODES:
            validate_response(error_response("r", code, "msg"))


class TestMatrixMaterialization:
    def test_seeded_matrix_matches_workloads(self):
        from repro.workloads.matrices import random_matrix

        doc = _decompose(shape=[8, 12], seed=11)
        np.testing.assert_array_equal(
            request_matrix(doc), random_matrix(8, 12, seed=11)
        )

    def test_inline_float64_exact_round_trip(self):
        from repro.workloads.matrices import random_matrix

        source = random_matrix(6, 6, seed=5)
        doc = {"op": "decompose", "id": "r",
               "matrix": source.tolist()}
        recovered = request_matrix(decode_line(encode(doc)))
        assert recovered.tobytes() == source.tobytes()

    def test_float32_cast(self):
        doc = _decompose(dtype="float32")
        assert request_matrix(doc).dtype == np.float32


class TestCoalesceKey:
    def test_same_parameters_same_key(self):
        a = request_key(_decompose(), (16, 16), 4)
        b = request_key(_decompose(seed=99, tenant="beta"), (16, 16), 4)
        assert a == b and hash(a) == hash(b)

    def test_different_shape_different_key(self):
        a = request_key(_decompose(), (16, 16), 4)
        b = request_key(_decompose(), (16, 32), 4)
        assert a != b

    def test_strategy_and_dtype_split_keys(self):
        base = request_key(_decompose(), (16, 16), 4)
        assert request_key(_decompose(strategy="scalar"), (16, 16), 4) != base
        assert request_key(_decompose(dtype="float32"), (16, 16), 4) != base

    def test_accessors(self):
        key = CoalesceKey(16, 32, "float64", "auto", 4)
        assert (key.m, key.n, key.dtype, key.strategy,
                key.block_width) == (16, 32, "float64", "auto", 4)
        assert key.cells == 512
        assert key.method == "block"

    def test_method_splits_keys(self):
        base = request_key(_decompose(), (16, 16), 4)
        tsqr = request_key(_decompose(method="tsqr"), (16, 16), 4)
        assert tsqr != base
        assert tsqr.method == "tsqr"
        assert base.method == "block"
        # Explicit default method coalesces with the omitted field.
        assert request_key(_decompose(method="block"), (16, 16), 4) == base

    def test_unknown_method_rejected(self):
        with pytest.raises(ServeProtocolError, match="method"):
            validate_request(_decompose(method="qr"))
