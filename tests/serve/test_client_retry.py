"""Client-side resilience: reconnect-and-resend across a server kill.

The client's transport errors surface as
:class:`~repro.errors.ServeConnectionError`, which subclasses
``ReproError`` and therefore sits inside the default
:class:`~repro.resilience.RetryPolicy` allowlist — so a client
configured with retries rides out a server restart transparently,
while a bare client surfaces the failure immediately.
"""

import numpy as np
import pytest

from repro.errors import ServeConnectionError
from repro.resilience import RetryPolicy
from repro.serve import ServeClient, ServeConfig, ServerThread


RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.05, jitter=0.0)


def test_connect_to_dead_server_raises_connection_error():
    # Grab a port that nothing listens on by starting and stopping a
    # server there.
    with ServerThread(ServeConfig()) as handle:
        host, port = handle.address
    client = ServeClient(host, port)
    with pytest.raises(ServeConnectionError):
        client.ping()


def test_retries_exhausted_still_raises_connection_error():
    with ServerThread(ServeConfig()) as handle:
        host, port = handle.address
    client = ServeClient(
        host, port,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
    )
    with pytest.raises(ServeConnectionError):
        client.decompose(shape=[16, 16], seed=0)


def test_client_survives_server_restart():
    first = ServerThread(ServeConfig()).start()
    host, port = first.address
    client = ServeClient(host, port, retry=RETRY)
    try:
        before = client.decompose(shape=[16, 16], seed=7)
        # Kill the server the client is connected to, then bring a
        # fresh one up on the same port.
        first.stop()
        second = ServerThread(ServeConfig(host=host, port=port)).start()
        try:
            after = client.decompose(shape=[16, 16], seed=7)
        finally:
            second.stop()
        # Same request, same engine path, same bytes — the restart is
        # invisible apart from the retry delay.
        assert np.asarray(after["sigma"]).tobytes() == np.asarray(
            before["sigma"]
        ).tobytes()
    finally:
        client.close()
        first.stop()


def test_bare_client_sees_the_kill():
    first = ServerThread(ServeConfig()).start()
    host, port = first.address
    client = ServeClient(host, port)  # no retry policy
    try:
        client.ping()
        first.stop()
        with pytest.raises(ServeConnectionError):
            client.ping()
    finally:
        client.close()
        first.stop()


class _ScriptedServer:
    """A fake daemon answering one connection from a canned envelope
    list — each reply reuses the incoming request's id.  Lets the busy
    (``draining``/``overloaded`` + ``retry_after_s``) retry path be
    tested without racing a real drain.
    """

    def __init__(self, envelopes):
        import socket
        import threading

        self.envelopes = list(envelopes)
        self.requests = []
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        import json

        from repro.serve.protocol import encode

        conn, _ = self._sock.accept()
        with conn:
            reader = conn.makefile("rb")
            for envelope in self.envelopes:
                line = reader.readline()
                if not line:
                    return
                doc = json.loads(line)
                self.requests.append(doc)
                reply = dict(envelope)
                reply["id"] = doc["id"]
                conn.sendall(encode(reply))

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5)


def _busy(code, retry_after_s=None):
    error = {"code": code, "message": f"server busy ({code})"}
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    return {"ok": False, "error": error}


_PONG = {"ok": True, "pong": True, "version": "1"}


class TestBusyRetry:
    def test_hinted_draining_is_retried_until_ok(self):
        fake = _ScriptedServer([_busy("draining", 0.02), _PONG])
        try:
            client = ServeClient(*fake.address, retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, jitter=0.0))
            response = client.request({"op": "ping", "id": "p-1"})
            client.close()
        finally:
            fake.close()
        assert response["ok"] is True
        # The same request was re-sent after the hinted pause.
        assert [doc["id"] for doc in fake.requests] == ["p-1", "p-1"]

    def test_hinted_overloaded_is_retried(self):
        fake = _ScriptedServer([_busy("overloaded", 0.02), _PONG])
        try:
            client = ServeClient(*fake.address, retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, jitter=0.0))
            response = client.request({"op": "ping", "id": "p-2"})
            client.close()
        finally:
            fake.close()
        assert response["ok"] is True
        assert len(fake.requests) == 2

    def test_unhinted_overloaded_is_not_retried(self):
        # Without a retry_after_s hint the envelope is returned
        # immediately — the pre-hardening contract.
        fake = _ScriptedServer([_busy("overloaded")])
        try:
            client = ServeClient(*fake.address, retry=RetryPolicy(
                max_attempts=5, base_delay_s=0.01, jitter=0.0))
            response = client.request({"op": "ping", "id": "p-3"})
            client.close()
        finally:
            fake.close()
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"
        assert len(fake.requests) == 1

    def test_hint_floors_the_backoff(self):
        import time

        fake = _ScriptedServer([_busy("draining", 0.25), _PONG])
        try:
            client = ServeClient(*fake.address, retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.001, jitter=0.0))
            begin = time.monotonic()
            response = client.request({"op": "ping", "id": "p-4"})
            elapsed = time.monotonic() - begin
            client.close()
        finally:
            fake.close()
        assert response["ok"] is True
        # The 1 ms policy backoff was floored to the server's hint.
        assert elapsed >= 0.2

    def test_exhausted_retries_return_the_busy_envelope(self):
        fake = _ScriptedServer([_busy("draining", 0.01)] * 2)
        try:
            client = ServeClient(*fake.address, retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.01, jitter=0.0))
            response = client.request({"op": "ping", "id": "p-5"})
            client.close()
        finally:
            fake.close()
        # No raise: the last busy envelope comes back structured.
        assert response["ok"] is False
        assert response["error"]["code"] == "draining"
        assert len(fake.requests) == 2

    def test_client_without_retry_gets_the_envelope_at_once(self):
        import time

        fake = _ScriptedServer([_busy("draining", 5.0)])
        try:
            client = ServeClient(*fake.address)
            begin = time.monotonic()
            response = client.request({"op": "ping", "id": "p-6"})
            elapsed = time.monotonic() - begin
            client.close()
        finally:
            fake.close()
        assert response["error"]["code"] == "draining"
        assert elapsed < 1.0  # the 5 s hint was not slept on
