"""Client-side resilience: reconnect-and-resend across a server kill.

The client's transport errors surface as
:class:`~repro.errors.ServeConnectionError`, which subclasses
``ReproError`` and therefore sits inside the default
:class:`~repro.resilience.RetryPolicy` allowlist — so a client
configured with retries rides out a server restart transparently,
while a bare client surfaces the failure immediately.
"""

import numpy as np
import pytest

from repro.errors import ServeConnectionError
from repro.resilience import RetryPolicy
from repro.serve import ServeClient, ServeConfig, ServerThread


RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.05, jitter=0.0)


def test_connect_to_dead_server_raises_connection_error():
    # Grab a port that nothing listens on by starting and stopping a
    # server there.
    with ServerThread(ServeConfig()) as handle:
        host, port = handle.address
    client = ServeClient(host, port)
    with pytest.raises(ServeConnectionError):
        client.ping()


def test_retries_exhausted_still_raises_connection_error():
    with ServerThread(ServeConfig()) as handle:
        host, port = handle.address
    client = ServeClient(
        host, port,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, jitter=0.0),
    )
    with pytest.raises(ServeConnectionError):
        client.decompose(shape=[16, 16], seed=0)


def test_client_survives_server_restart():
    first = ServerThread(ServeConfig()).start()
    host, port = first.address
    client = ServeClient(host, port, retry=RETRY)
    try:
        before = client.decompose(shape=[16, 16], seed=7)
        # Kill the server the client is connected to, then bring a
        # fresh one up on the same port.
        first.stop()
        second = ServerThread(ServeConfig(host=host, port=port)).start()
        try:
            after = client.decompose(shape=[16, 16], seed=7)
        finally:
            second.stop()
        # Same request, same engine path, same bytes — the restart is
        # invisible apart from the retry delay.
        assert np.asarray(after["sigma"]).tobytes() == np.asarray(
            before["sigma"]
        ).tobytes()
    finally:
        client.close()
        first.stop()


def test_bare_client_sees_the_kill():
    first = ServerThread(ServeConfig()).start()
    host, port = first.address
    client = ServeClient(host, port)  # no retry policy
    try:
        client.ping()
        first.stop()
        with pytest.raises(ServeConnectionError):
            client.ping()
    finally:
        client.close()
        first.stop()
