"""JobQueue unit tests: admission ladder, WFQ ordering, coalescing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serve.protocol import CoalesceKey
from repro.serve.queue import AdmissionPolicy, Job, JobQueue

KEY_A = CoalesceKey(16, 16, "float64", "auto", 4)
KEY_B = CoalesceKey(24, 24, "float64", "auto", 4)
#: Same cell count as KEY_A but a different key — fairness tests use
#: it so virtual-time charges stay equal while batches never mix.
KEY_A2 = CoalesceKey(16, 16, "float64", "scalar", 4)


def _job(tenant="default", key=KEY_A, request_id="r"):
    return Job(
        request_id=request_id,
        tenant=tenant,
        key=key,
        matrix=np.zeros((key.m, key.n)),
    )


class TestAdmissionPolicy:
    def test_defaults_valid(self):
        AdmissionPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_depth": 0},
        {"high_water": 0},
        {"high_water": 10, "max_depth": 5},
        {"max_cells": 1},
        {"reject_cells": 16, "max_cells": 65536},
        {"max_batch": 0},
        {"max_oversized": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(**kwargs)

    def test_classify_ladder(self):
        queue = JobQueue(AdmissionPolicy(max_cells=100, reject_cells=1000))
        assert queue.classify(100) == "engine"
        assert queue.classify(101) == "brownout"
        assert queue.classify(1000) == "brownout"
        assert queue.classify(1001) == "reject"


class TestAdmission:
    def test_push_at_max_depth_raises_overloaded(self):
        queue = JobQueue(AdmissionPolicy(max_depth=2, high_water=1))
        queue.push(_job(request_id="a"))
        queue.push(_job(request_id="b"))
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.push(_job(request_id="c"))
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.depth == 2
        assert excinfo.value.limit == 2
        assert queue.total_rejected == 1
        assert queue.depth == 2

    def test_peak_depth_tracked(self):
        queue = JobQueue()
        for index in range(5):
            queue.push(_job(request_id=str(index)))
        queue.pop_batch()
        assert queue.depth == 0
        assert queue.peak_depth == 5
        stats = queue.stats()
        assert stats["peak_queue_depth"] == 5
        assert stats["admitted"] == 5

    def test_emptied_tenants_are_forgotten(self):
        # Tenant names are arbitrary client strings: once a tenant's
        # backlog drains, its deque and vtime entry must go with it or
        # unique names grow the queue's bookkeeping without bound.
        queue = JobQueue()
        for name in ("alpha", "beta", "gamma"):
            queue.push(_job(tenant=name, request_id=name))
        while queue.depth:
            queue.pop_batch()
        assert queue.stats()["tenants"] == 0
        assert queue._queues == {}
        assert queue._vtime == {}
        # Re-entry re-anchors to the virtual clock as usual.
        queue.push(_job(tenant="alpha", request_id="again"))
        assert queue._vtime["alpha"] == queue._virtual_now

    def test_drain_forgets_tenants(self):
        queue = JobQueue()
        queue.push(_job(tenant="alpha", request_id="a"))
        queue.push(_job(tenant="beta", key=KEY_B, request_id="b"))
        assert len(queue.drain()) == 2
        assert queue.stats()["tenants"] == 0
        assert queue._vtime == {}


class TestCoalescing:
    def test_pop_gathers_same_key_only(self):
        queue = JobQueue()
        queue.push(_job(request_id="a1", key=KEY_A))
        queue.push(_job(request_id="b1", key=KEY_B))
        queue.push(_job(request_id="a2", key=KEY_A))
        batch, key = queue.pop_batch()
        assert key == KEY_A
        assert [job.request_id for job in batch] == ["a1", "a2"]
        batch, key = queue.pop_batch()
        assert key == KEY_B
        assert [job.request_id for job in batch] == ["b1"]
        assert queue.depth == 0

    def test_skipped_jobs_keep_fifo_order(self):
        queue = JobQueue()
        for request_id, key in [("b1", KEY_B), ("a1", KEY_A),
                                ("b2", KEY_B), ("a2", KEY_A)]:
            queue.push(_job(request_id=request_id, key=key))
        queue.pop_batch()  # pops the b's (head job's key)
        batch, key = queue.pop_batch()
        assert key == KEY_A
        assert [job.request_id for job in batch] == ["a1", "a2"]

    def test_max_batch_respected(self):
        queue = JobQueue(AdmissionPolicy(max_batch=3))
        for index in range(5):
            queue.push(_job(request_id=str(index)))
        batch, _ = queue.pop_batch()
        assert len(batch) == 3
        assert queue.depth == 2

    def test_coalesces_across_tenants(self):
        queue = JobQueue()
        queue.push(_job(tenant="alpha", request_id="a"))
        queue.push(_job(tenant="beta", request_id="b"))
        batch, _ = queue.pop_batch()
        assert {job.request_id for job in batch} == {"a", "b"}

    def test_empty_queue_pops_nothing(self):
        assert JobQueue().pop_batch() == ([], None)

    def test_auto_and_resolved_tier_coalesce(self):
        # Regression: request_key used to key on the raw wire string,
        # so an "auto" request and an explicit request for the tier
        # "auto" resolves to landed in different engine batches despite
        # being the same computation.  Keys are now normalized through
        # resolve_strategy before coalescing.
        from repro.linalg import resolve_strategy
        from repro.serve.protocol import request_key

        resolved = resolve_strategy("auto")
        key_auto = request_key({"strategy": "auto"}, (16, 16), 4)
        key_default = request_key({}, (16, 16), 4)
        key_explicit = request_key({"strategy": resolved}, (16, 16), 4)
        assert key_auto == key_default == key_explicit
        assert key_auto.strategy == resolved

        queue = JobQueue()
        queue.push(_job(request_id="a", key=key_auto))
        queue.push(_job(request_id="b", key=key_explicit))
        batch, key = queue.pop_batch()
        assert [job.request_id for job in batch] == ["a", "b"]
        assert key.strategy == resolved
        assert queue.depth == 0

    def test_distinct_tiers_still_split(self):
        from repro.serve.protocol import request_key

        key_scalar = request_key({"strategy": "scalar"}, (16, 16), 4)
        key_auto = request_key({"strategy": "auto"}, (16, 16), 4)
        assert key_scalar != key_auto


class TestWeightedFairness:
    def test_heavier_tenant_served_proportionally_more(self):
        # Full queue, two tenants with distinct keys so batches never
        # mix: weight 4 should be served ~4 jobs for every 1 of
        # weight 1.
        queue = JobQueue(
            AdmissionPolicy(max_batch=1),
            tenant_weights={"heavy": 4.0, "light": 1.0},
        )
        for index in range(24):
            queue.push(_job(tenant="heavy", key=KEY_A,
                            request_id=f"h{index}"))
            queue.push(_job(tenant="light", key=KEY_A2,
                            request_id=f"l{index}"))
        first_ten = []
        for _ in range(10):
            batch, _ = queue.pop_batch()
            first_ten.extend(job.request_id for job in batch)
        heavy = sum(1 for rid in first_ten if rid.startswith("h"))
        light = len(first_ten) - heavy
        assert heavy == 8 and light == 2

    def test_equal_weights_alternate(self):
        queue = JobQueue(AdmissionPolicy(max_batch=1))
        for index in range(4):
            queue.push(_job(tenant="x", key=KEY_A, request_id=f"x{index}"))
            queue.push(_job(tenant="y", key=KEY_A2, request_id=f"y{index}"))
        served = []
        for _ in range(8):
            batch, _ = queue.pop_batch()
            served.extend(job.request_id[0] for job in batch)
        # Same cost per job, equal weights: strict alternation.
        assert served == ["x", "y"] * 4

    def test_idle_tenant_does_not_hoard_credit(self):
        queue = JobQueue(AdmissionPolicy(max_batch=1))
        for index in range(8):
            queue.push(_job(tenant="busy", key=KEY_A,
                            request_id=f"b{index}"))
        for _ in range(8):
            queue.pop_batch()
        # "sleeper" was idle the whole time; it re-enters at the
        # current virtual clock, not at zero.  "busy" emptied, so its
        # charge was folded into the clock and it re-anchors there too:
        # a genuine tie, broken by name, one job each — neither tenant
        # gained anything by its history.
        queue.push(_job(tenant="sleeper", key=KEY_B, request_id="s0"))
        queue.push(_job(tenant="busy", key=KEY_A, request_id="b8"))
        order = [queue.pop_batch()[0][0].request_id for _ in range(2)]
        assert order == ["b8", "s0"]
        assert queue.depth == 0

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            JobQueue(tenant_weights={"zero": 0.0})


class TestDrain:
    def test_drain_returns_everything(self):
        queue = JobQueue()
        for index in range(4):
            queue.push(_job(request_id=str(index)))
        drained = queue.drain()
        assert len(drained) == 4
        assert queue.depth == 0
        assert queue.pop_batch() == ([], None)
