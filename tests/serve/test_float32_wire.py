"""End-to-end float32 requests: round-trip, no cross-dtype coalescing.

A ``dtype="float32"`` request must be materialized in single precision
server-side, must never share an engine batch with float64 batchmates
(the coalescing key includes the dtype), and must answer exactly what
a local :func:`repro.linalg.svd` computes on the same float32 input.
"""

import threading

import numpy as np
import pytest

from repro.linalg import svd
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import request_key, request_matrix
from repro.workloads import random_matrix


@pytest.fixture()
def server():
    with ServerThread(ServeConfig()) as handle:
        yield handle


class TestFloat32RequestKey:
    def test_dtype_splits_the_coalescing_key(self):
        doc64 = {"shape": [16, 16], "seed": 0}
        doc32 = {"shape": [16, 16], "seed": 0, "dtype": "float32"}
        key64 = request_key(doc64, (16, 16), 4)
        key32 = request_key(doc32, (16, 16), 4)
        assert key64 != key32
        assert key32.dtype == "float32"

    def test_request_matrix_materializes_float32(self):
        matrix = random_matrix(8, 8, seed=7)
        doc = {"matrix": matrix.tolist(), "dtype": "float32"}
        materialized = request_matrix(doc)
        assert materialized.dtype == np.float32
        np.testing.assert_array_equal(
            materialized, matrix.astype(np.float32)
        )


class TestFloat32EndToEnd:
    def test_inline_float32_matches_local_svd(self, server):
        matrix = random_matrix(8, 8, seed=42)
        with ServeClient(*server.address) as client:
            response = client.decompose(
                matrix=matrix.tolist(), dtype="float32"
            )
        assert response["degraded"] is False

        local = svd(
            matrix.astype(np.float32),
            method="block", block_width=4, precision=1e-6,
            strategy="auto",
        ).singular_values
        wire = np.asarray(response["sigma"], dtype=np.float64)
        assert wire.tobytes() == np.asarray(
            local, dtype=np.float64
        ).tobytes()

    def test_float32_never_coalesces_with_float64(self, server):
        # Same shape, same seed, different dtype: the keys differ, so
        # the two requests cannot land in one engine batch — and each
        # must still match its own local computation.
        responses = {}
        errors = []

        def ask(dtype):
            try:
                with ServeClient(*server.address) as client:
                    kwargs = {"shape": [16, 16], "seed": 3}
                    if dtype == "float32":
                        kwargs["dtype"] = "float32"
                    responses[dtype] = client.decompose(**kwargs)
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=ask, args=(d,))
            for d in ("float64", "float32")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        base = random_matrix(16, 16, seed=3)
        for dtype, local_input in (
            ("float64", base),
            ("float32", base.astype(np.float32)),
        ):
            local = svd(
                local_input, method="block", block_width=4,
                precision=1e-6, strategy="auto",
            ).singular_values
            wire = np.asarray(responses[dtype]["sigma"], dtype=np.float64)
            assert wire.tobytes() == np.asarray(
                local, dtype=np.float64
            ).tobytes(), dtype

        # The answers themselves must differ: single-precision input
        # cannot reproduce the float64 spectrum bit-for-bit.
        assert (
            np.asarray(responses["float32"]["sigma"]).tobytes()
            != np.asarray(responses["float64"]["sigma"]).tobytes()
        )

        with ServeClient(*server.address) as client:
            stats = client.stats()
        # Two distinct keys can never share a batch: at least two
        # engine batches ran for the two requests.
        assert stats.get("serve.batches", 0) >= 2
