"""Regression tests: deadline expiry mid-batch must not lose tasks.

Before the fix, a :class:`~repro.exec.batch.BatchExecutor` run whose
deadline expired mid-batch raised :class:`DeadlineExceeded` with only
``completed_task_ids`` on the partial — the completed tasks' singular
values (and their per-task LAPACK-fallback ``degraded`` flags) were
computed and then thrown away, and the unfinished tasks were not named
anywhere.  The serving layer answers the completed prefix of an
expired batch from exactly this partial, so every task must be
accounted for: ``details["results"]`` carries the completed
:class:`~repro.exec.batch.TaskResult` objects and
``completed_task_ids`` / ``pending_task_ids`` / ``degraded_task_ids``
partition the batch.
"""

import time

import numpy as np
import pytest

from repro.core.config import HeteroSVDConfig
from repro.errors import DeadlineExceeded
from repro.exec.batch import BatchExecutor, TaskResult
from repro.guard import Deadline
from repro.resilience import FaultPlan, FaultSpec
from repro.workloads import make_batch

SIZE = 24
BATCH = 10


def _config(p_task: int = 1) -> HeteroSVDConfig:
    return HeteroSVDConfig(m=SIZE, n=SIZE, p_eng=4, p_task=p_task)


def _run_expired(budget_s: float, plan=None):
    """Run a batch under ``budget_s`` and return the DeadlineExceeded."""
    executor = BatchExecutor(_config(), engine="software", jobs=1)
    batch = make_batch(SIZE, SIZE, batch=BATCH, seed=7)
    context = plan.activate() if plan is not None else None
    try:
        if context is not None:
            context.__enter__()
        with pytest.raises(DeadlineExceeded) as excinfo:
            executor.run(batch, deadline=Deadline(budget_s))
    finally:
        if context is not None:
            context.__exit__(None, None, None)
    return excinfo.value


def _single_task_seconds() -> float:
    executor = BatchExecutor(_config(), engine="software", jobs=1)
    batch = make_batch(SIZE, SIZE, batch=1, seed=7)
    started = time.perf_counter()
    executor.run(batch)
    return time.perf_counter() - started


class TestDeadlinePartialAccounting:
    def test_immediate_expiry_names_every_pending_task(self):
        error = _run_expired(1e-9)
        partial = error.partial
        assert partial is not None
        assert partial.completed == 0
        assert partial.total == BATCH
        assert partial.details["completed_task_ids"] == []
        assert partial.details["pending_task_ids"] == list(range(BATCH))
        assert partial.details["degraded_task_ids"] == []
        assert partial.details["results"] == []

    def test_mid_batch_expiry_partitions_the_batch(self):
        # ~1.5 task-times of budget on a single sequential pipeline:
        # at least the first task completes, and 10 tasks can never all
        # fit, so the partition is exercised from both sides.
        budget = max(1.5 * _single_task_seconds(), 0.02)
        error = _run_expired(budget)
        partial = error.partial
        completed = partial.details["completed_task_ids"]
        pending = partial.details["pending_task_ids"]
        assert len(completed) >= 1
        assert len(pending) >= 1
        assert sorted(completed + pending) == list(range(BATCH))
        assert partial.completed == len(completed)

    def test_completed_results_ride_on_the_partial(self):
        budget = max(1.5 * _single_task_seconds(), 0.02)
        error = _run_expired(budget)
        results = error.partial.details["results"]
        assert [r.task_id for r in results] == (
            error.partial.details["completed_task_ids"]
        )
        batch = make_batch(SIZE, SIZE, batch=BATCH, seed=7)
        for result in results:
            assert isinstance(result, TaskResult)
            reference = np.linalg.svd(
                batch.matrices[result.task_id], compute_uv=False
            )
            np.testing.assert_allclose(
                np.sort(result.sigma)[::-1][: len(reference)],
                reference, rtol=1e-6, atol=1e-8,
            )

    def test_degraded_fallback_task_is_flagged_on_the_partial(self):
        # Force task 0 (first invocation of the linalg site) onto the
        # LAPACK fallback, then expire mid-batch: the completed,
        # degraded task must be reported as both completed AND
        # degraded — a delivered answer, not a casualty of the expiry.
        plan = FaultPlan(
            faults=[FaultSpec(site="linalg.nonconvergence", at=(0,))]
        )
        budget = max(1.5 * _single_task_seconds(), 0.02)
        error = _run_expired(budget, plan=plan)
        details = error.partial.details
        assert 0 in details["completed_task_ids"]
        assert 0 in details["degraded_task_ids"]
        by_id = {r.task_id: r for r in details["results"]}
        assert by_id[0].degraded
        assert details["degraded_task_ids"] == [
            r.task_id for r in details["results"] if r.degraded
        ]
