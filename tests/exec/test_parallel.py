"""Tests for the deterministic parallel runner and parallel DSE."""

import json

import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.errors import ConfigurationError
from repro.exec.cache import EvalCache
from repro.exec.parallel import (
    JOBS_ENV_VAR,
    ParallelRunner,
    parallel_explore,
    resolve_jobs,
)
from repro.io import design_point_to_dict


def _square(x):
    return x * x  # module-level: picklable for process pools


def _add(a, b):
    return a + b


class TestResolveJobs:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert resolve_jobs() == 4
        monkeypatch.setenv(JOBS_ENV_VAR, "  ")
        assert resolve_jobs() == 1

    @pytest.mark.parametrize("bad", ["zero", "1.5"])
    def test_unparseable_env(self, monkeypatch, bad):
        monkeypatch.setenv(JOBS_ENV_VAR, bad)
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_jobs(bad)


class TestParallelRunner:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(mode="fork")
        with pytest.raises(ConfigurationError):
            ParallelRunner(chunk_size=0)

    def test_inline_when_single_worker(self):
        runner = ParallelRunner(jobs=1)
        assert runner.map(_square, range(5)) == [0, 1, 4, 9, 16]
        assert runner._pool is None  # never spawned a pool

    def test_chunking_covers_all_items(self):
        runner = ParallelRunner(jobs=2, chunk_size=3)
        chunks = runner._chunks(list(range(8)))
        assert [len(c) for c in chunks] == [3, 3, 2]
        assert [x for c in chunks for x in c] == list(range(8))

    def test_thread_map_preserves_order(self):
        with ParallelRunner(jobs=4, mode="thread", chunk_size=1) as runner:
            items = list(range(40))
            assert runner.map(_square, items) == [x * x for x in items]

    def test_process_map_matches_serial(self):
        with ParallelRunner(jobs=2) as runner:
            assert runner.map(_square, range(20)) == \
                [x * x for x in range(20)]

    def test_starmap(self):
        with ParallelRunner(jobs=2, mode="thread") as runner:
            assert runner.starmap(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_pool_reused_across_maps(self):
        with ParallelRunner(jobs=2, mode="thread") as runner:
            runner.map(_square, range(4))
            pool = runner._pool
            runner.map(_square, range(4))
            assert runner._pool is pool

    def test_close_is_idempotent(self):
        runner = ParallelRunner(jobs=2, mode="thread")
        runner.map(_square, range(4))
        runner.close()
        runner.close()
        assert runner._pool is None


class TestParallelExplore:
    """The ISSUE determinism contract: any job count, same ranked list."""

    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(64, 64)

    @pytest.fixture(scope="class")
    def serial(self, explorer):
        return explorer.explore()

    def test_jobs_4_is_byte_identical_to_serial(self, explorer, serial):
        parallel = explorer.explore(jobs=4)
        assert parallel == serial  # full ordering, not just the best
        serial_json = json.dumps(
            [design_point_to_dict(p) for p in serial], sort_keys=True
        )
        parallel_json = json.dumps(
            [design_point_to_dict(p) for p in parallel], sort_keys=True
        )
        assert parallel_json == serial_json

    def test_jobs_env_var_routes_to_parallel(
        self, explorer, serial, monkeypatch
    ):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        assert explorer.explore() == serial

    def test_objectives_agree_with_serial(self, explorer):
        for objective in ("throughput", "energy_efficiency"):
            assert explorer.explore(objective, jobs=2) == \
                explorer.explore(objective)

    def test_cached_explore_matches_and_hits(self, explorer, serial):
        cache = EvalCache()
        cold = explorer.explore(cache=cache)
        assert cold == serial
        assert cache.stats.misses > 0
        warm = explorer.explore(cache=cache)
        assert warm == serial
        assert warm == cold
        # everything (stage-1 candidates + every point) served from memory
        assert cache.stats.hits >= len(serial) + 1
        assert cache.stats.misses == len(serial) + 1

    def test_disk_cache_survives_restart(self, explorer, serial, tmp_path):
        explorer.explore(cache=EvalCache(disk_dir=tmp_path / "c"))
        fresh = EvalCache(disk_dir=tmp_path / "c")
        assert explorer.explore(cache=fresh) == serial
        assert fresh.stats.misses == 0
        assert fresh.stats.disk_hits == len(serial) + 1

    def test_power_cap_matches_serial(self, explorer):
        cap = 30.0
        assert explorer.explore(power_cap_w=cap, jobs=2) == \
            explorer.explore(power_cap_w=cap)

    def test_rejects_unknown_objective(self, explorer):
        with pytest.raises(ConfigurationError):
            parallel_explore(explorer, objective="area")

    def test_injected_runner_is_not_closed(self, explorer, serial):
        with ParallelRunner(jobs=2) as runner:
            first = parallel_explore(explorer, runner=runner)
            second = parallel_explore(explorer, runner=runner)
        assert first == serial
        assert second == serial
