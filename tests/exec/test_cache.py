"""Tests for the evaluation memoization cache."""

import json

import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.errors import ConfigurationError
from repro.exec.cache import EvalCache, cache_key


@pytest.fixture
def explorer():
    return DesignSpaceExplorer(64, 64)


@pytest.fixture
def point(explorer):
    return explorer.evaluate(4, 1)


class TestCacheKey:
    def test_stable_across_calls(self):
        a = cache_key("k", {"x": 1, "y": [1, 2]})
        b = cache_key("k", {"y": [1, 2], "x": 1})
        assert a == b  # canonical JSON: field order irrelevant

    def test_kind_and_payload_distinguish(self):
        base = cache_key("k", {"x": 1})
        assert cache_key("other", {"x": 1}) != base
        assert cache_key("k", {"x": 2}) != base

    def test_config_key_embeds_workload(self, explorer):
        cache = EvalCache()
        config = explorer.make_config(4, 1)
        assert cache.key_for_config("e", config, batch=1) != \
            cache.key_for_config("e", config, batch=100)

    def test_key_changes_with_model_version(self, monkeypatch):
        before = cache_key("k", {"x": 1})
        import repro.core.perf_model as perf_model

        monkeypatch.setattr(perf_model, "MODEL_VERSION", "999-test")
        assert cache_key("k", {"x": 1}) != before


class TestMemoryLayer:
    def test_hit_returns_equal_object_and_counts(self, explorer, point):
        cache = EvalCache()
        key = cache.key_for_config("e", point.config, batch=1)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, point)
        hit = cache.get(key)
        assert hit == point
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_get_or_compute_computes_once(self, point):
        cache = EvalCache()
        calls = []

        def compute():
            calls.append(1)
            return point

        assert cache.get_or_compute("k", compute) == point
        assert cache.get_or_compute("k", compute) == point
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # refresh "a"
        cache.put("c", 3.0)  # evicts "b"
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0

    def test_rejects_none_and_odd_types(self):
        cache = EvalCache()
        with pytest.raises(ConfigurationError):
            cache.put("k", None)
        with pytest.raises(ConfigurationError):
            EvalCache(max_entries=0)


class TestDiskLayer:
    def test_round_trip_is_exact(self, tmp_path, explorer, point):
        first = EvalCache(disk_dir=tmp_path / "c")
        key = first.key_for_config("e", point.config, batch=1)
        first.put(key, point)

        second = EvalCache(disk_dir=tmp_path / "c")
        restored = second.get(key)
        assert restored == point
        assert second.stats.disk_hits == 1
        # promoted to memory: the next lookup is a memory hit
        assert second.get(key) == point
        assert second.stats.hits == 1

    def test_numbers_and_json_round_trip(self, tmp_path):
        first = EvalCache(disk_dir=tmp_path / "c")
        first.put("cost", 1.25e-3)
        first.put("stage1", [[1, 2], [3, 4]])
        second = EvalCache(disk_dir=tmp_path / "c")
        assert second.get("cost") == 1.25e-3
        assert second.get("stage1") == [[1, 2], [3, 4]]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        path = cache._entry_path("k")
        path.write_text("{not json")
        fresh = EvalCache(disk_dir=tmp_path / "c")
        assert fresh.get("k") is None
        assert fresh.stats.misses == 1

    def test_entries_are_plain_json(self, tmp_path, point):
        cache = EvalCache(disk_dir=tmp_path / "c")
        key = cache.key_for_config("e", point.config, batch=1)
        cache.put(key, point)
        entry = json.loads(cache._entry_path(key).read_text())
        assert entry["type"] == "design_point"
        assert entry["data"]["config"]["m"] == 64

    def test_model_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        old_dir = cache._version_dir()

        import repro.core.perf_model as perf_model

        monkeypatch.setattr(perf_model, "MODEL_VERSION", "999-test")
        bumped = EvalCache(disk_dir=tmp_path / "c")
        # same logical key string hashes differently under the new
        # version, and the old version's entries are purgeable
        assert bumped.get("k") is None
        assert old_dir.exists()
        assert bumped.purge_stale() == 1
        assert not old_dir.exists()

    def test_clear_drops_current_version_only(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_stats_describe(self):
        cache = EvalCache()
        cache.put("k", 1.0)
        cache.get("k")
        cache.get("missing")
        text = cache.stats.describe()
        assert "1 memory hits" in text
        assert "1 misses" in text
        assert cache.stats.hit_rate == 0.5


class TestCorruptionResilience:
    """Disk entries carry a sha256 checksum; damaged entries are
    evicted (and counted) instead of being served or crashing."""

    def test_entries_carry_a_checksum(self, tmp_path):
        from repro.exec.cache import entry_checksum

        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        entry = json.loads(cache._entry_path("k").read_text())
        assert entry["sha256"] == entry_checksum(entry)

    def test_truncated_entry_is_evicted_and_recomputable(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        path = cache._entry_path("k")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write / bit rot

        fresh = EvalCache(disk_dir=tmp_path / "c")
        assert fresh.get("k") is None
        assert fresh.stats.corrupt_entries == 1
        assert not path.exists()  # evicted, not left to fail again
        fresh.put("k", 1.0)  # recompute-and-store works
        assert EvalCache(disk_dir=tmp_path / "c").get("k") == 1.0

    def test_checksum_mismatch_is_evicted(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        path = cache._entry_path("k")
        entry = json.loads(path.read_text())
        entry["data"] = 2.0  # valid JSON, silently flipped payload
        path.write_text(json.dumps(entry))

        fresh = EvalCache(disk_dir=tmp_path / "c")
        assert fresh.get("k") is None
        assert fresh.stats.corrupt_entries == 1

    def test_legacy_entry_without_checksum_still_served(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        path = cache._entry_path("k")
        entry = json.loads(path.read_text())
        del entry["sha256"]  # entry written before the integrity field
        path.write_text(json.dumps(entry))

        fresh = EvalCache(disk_dir=tmp_path / "c")
        assert fresh.get("k") == 1.0
        assert fresh.stats.corrupt_entries == 0

    def test_corrupt_entries_surface_in_describe_and_metrics(self, tmp_path):
        from repro import obs

        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        cache._entry_path("k").write_text("{not json")

        obs.reset()
        obs.enable()
        try:
            fresh = EvalCache(disk_dir=tmp_path / "c")
            assert fresh.get("k") is None
            counters = obs.get_metrics().snapshot()["counters"]
            assert counters["cache.corrupt_entries"] == 1
        finally:
            obs.disable()
        assert "1 corrupt entries evicted" in fresh.stats.describe()

    def test_clean_cache_reports_no_corruption(self, tmp_path):
        cache = EvalCache(disk_dir=tmp_path / "c")
        cache.put("k", 1.0)
        assert EvalCache(disk_dir=tmp_path / "c").get("k") == 1.0
        assert "corrupt" not in cache.stats.describe()
