"""Tests for the pipeline batch executor."""

import numpy as np
import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.errors import ConfigurationError
from repro.exec.batch import BatchExecutor
from repro.exec.cache import EvalCache
from repro.workloads.batch import TaskBatch, make_batch


@pytest.fixture(scope="module")
def config():
    # Fast functional runs: tiny matrices, relaxed precision.
    return DesignSpaceExplorer(32, 32, precision=1e-4).make_config(4, 2)


@pytest.fixture(scope="module")
def batch():
    return make_batch(32, 32, batch=4, seed=7)


@pytest.fixture(scope="module")
def report(config, batch):
    return BatchExecutor(config, jobs=2).run(batch)


class TestBatchExecutor:
    def test_rejects_bad_inputs(self, config):
        with pytest.raises(ConfigurationError):
            BatchExecutor(config, engine="quantum")
        with pytest.raises(ConfigurationError):
            BatchExecutor(config).run(TaskBatch(m=32, n=32))

    def test_results_in_input_order(self, report, batch):
        assert [r.task_id for r in report.results] == list(range(len(batch)))

    def test_sigma_matches_lapack(self, report, batch):
        for result, matrix in zip(report.results, batch):
            reference = np.linalg.svd(matrix, compute_uv=False)
            sigma = np.sort(result.sigma)[::-1][: len(reference)]
            np.testing.assert_allclose(sigma, reference, atol=1e-3)

    def test_runs_mirror_scheduler_assignment(self, report, config, batch):
        executor = BatchExecutor(config)
        schedule = executor.scheduler.schedule(batch.to_specs())
        assignment = executor.scheduler.assignment(schedule)
        assert len(report.runs) <= config.p_task
        for run in report.runs:
            planned = tuple(s.task_id for s in assignment[run.pipeline])
            assert run.task_ids == planned
            assert run.modelled_time == \
                schedule.pipeline_times[run.pipeline]

    def test_report_accounting(self, report):
        assert report.wall_makespan > 0
        assert report.serial_time >= max(r.wall_time for r in report.runs)
        assert report.speedup > 0
        assert 0 < report.efficiency <= report.speedup
        assert report.modelled_makespan == report.schedule.makespan

    def test_software_engine_agrees(self, config, batch, report):
        soft = BatchExecutor(config, engine="software", jobs=1).run(batch)
        for a, b in zip(soft.results, report.results):
            assert a.task_id == b.task_id
            ref = np.sort(a.sigma)[::-1][: len(b.sigma)]
            got = np.sort(b.sigma)[::-1][: len(ref)]
            np.testing.assert_allclose(got, ref, atol=1e-3)

    def test_every_pipeline_run_is_recorded(self, report, batch):
        executed = [t for run in report.runs for t in run.task_ids]
        assert sorted(executed) == list(range(len(batch)))

    def test_shared_cost_cache(self, config, batch):
        cache = EvalCache()
        BatchExecutor(config, jobs=1, cache=cache).run(batch)
        assert cache.stats.stores > 0
        # same-sized tasks: one cost evaluation serves the whole batch
        assert cache.stats.stores == 1

    def test_rejects_unknown_method(self, config):
        with pytest.raises(ConfigurationError, match="method"):
            BatchExecutor(config, method="qr")

    @pytest.mark.parametrize("method", ["tsqr", "dnc", "streaming",
                                        "hestenes"])
    def test_software_methods_match_lapack(self, config, batch, method):
        report = BatchExecutor(
            config, engine="software", jobs=1, method=method,
        ).run(batch)
        for result, matrix in zip(report.results, batch):
            reference = np.linalg.svd(matrix, compute_uv=False)
            sigma = np.sort(result.sigma)[::-1][: len(reference)]
            np.testing.assert_allclose(sigma, reference, atol=1e-6)
            assert not result.degraded

    def test_method_crosses_process_pool(self, config, batch):
        # The method must survive payload pickling into pool workers.
        report = BatchExecutor(
            config, engine="software", jobs=2, method="dnc",
        ).run(batch)
        for result, matrix in zip(report.results, batch):
            reference = np.linalg.svd(matrix, compute_uv=False)
            sigma = np.sort(result.sigma)[::-1][: len(reference)]
            np.testing.assert_allclose(sigma, reference, atol=1e-6)


class TestTaskBatchViews:
    def test_to_specs_ids_are_batch_indices(self, batch):
        specs = batch.to_specs()
        assert [s.task_id for s in specs] == list(range(len(batch)))
        assert all(s.m == 32 and s.n == 32 for s in specs)

    def test_split_is_contiguous_and_even(self):
        batch = make_batch(16, 16, batch=5)
        shards = batch.split(2)
        assert [len(s) for s in shards] == [3, 2]
        merged = [m for shard in shards for m in shard]
        for a, b in zip(merged, batch):
            np.testing.assert_array_equal(a, b)

    def test_split_drops_empty_shards(self):
        shards = make_batch(16, 16, batch=2).split(4)
        assert [len(s) for s in shards] == [1, 1]

    def test_split_rejects_bad_parts(self):
        with pytest.raises(ConfigurationError):
            make_batch(16, 16, batch=2).split(0)
