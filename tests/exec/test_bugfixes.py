"""Regression tests for the exec-layer bugfix sweep.

Each class pins one fix:

* ``TestConcurrentDiskWrites`` — ``EvalCache._disk_put`` used one
  deterministic ``.tmp`` name, so two processes sharing
  ``.repro_cache/`` raced on the same temp file; and any ``OSError``
  on the write/replace killed the sweep.
* ``TestWorkerFailureContext`` — ``ParallelRunner.map`` lost which
  item a failing worker was processing and let later chunks keep
  running.
* ``TestFallbackKeyCollision`` — ``key_for_config``'s describe-string
  fallback let two ad-hoc devices with equal describe output share
  cache entries.
"""

import threading
from pathlib import Path

import pytest

from repro.errors import ParallelExecutionError
from repro.exec.cache import EvalCache
from repro.exec.parallel import ParallelRunner


# -- fix 1: concurrent disk writes --------------------------------------------

class TestConcurrentDiskWrites:
    def test_temp_names_are_unique_per_write(self, tmp_path, monkeypatch):
        """Two writers of the same key must never share a temp file.

        Pre-fix, ``path.with_suffix(".tmp")`` gave every writer of one
        key the identical temp path; this records the temp names two
        interleaved writers actually use and requires them distinct.
        """
        seen = []
        original_write = Path.write_text

        def spying_write(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                seen.append(self.name)
            return original_write(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_text", spying_write)
        first = EvalCache(disk_dir=tmp_path / "shared")
        second = EvalCache(disk_dir=tmp_path / "shared")
        first.put("same-key", 1.0)
        second.put("same-key", 2.0)
        assert len(seen) == 2
        assert seen[0] != seen[1]

    def test_replace_failure_never_kills_a_sweep(
        self, tmp_path, monkeypatch
    ):
        """A failed atomic replace degrades to memory-only, silently."""
        cache = EvalCache(disk_dir=tmp_path / "c")

        def broken_replace(self, target):
            raise OSError("no rename for you")

        monkeypatch.setattr(Path, "replace", broken_replace)
        cache.put("k", 1.0)  # pre-fix: OSError propagated
        assert cache.get("k") == 1.0  # memory layer still serves
        # and the failed write left no temp litter behind
        version_dir = cache._version_dir()
        leftovers = list(version_dir.rglob("*.tmp")) \
            if version_dir.exists() else []
        assert leftovers == []

    def test_write_failure_never_kills_a_sweep(self, tmp_path, monkeypatch):
        cache = EvalCache(disk_dir=tmp_path / "c")

        def broken_write(self, *args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(Path, "write_text", broken_write)
        cache.put("k", 2.5)
        assert cache.get("k") == 2.5

    def test_interleaved_writer_stress(self, tmp_path):
        """Two caches, one directory, interleaved puts over shared and
        private keys: no crash, and every entry survives readable."""
        shared = tmp_path / "shared"
        first = EvalCache(disk_dir=shared)
        second = EvalCache(disk_dir=shared)
        errors = []

        def hammer(cache, worker):
            try:
                for i in range(50):
                    cache.put(f"shared-{i % 10}", float(i))
                    cache.put(f"private-{worker}-{i}", float(i))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(first, 0)),
            threading.Thread(target=hammer, args=(second, 1)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        fresh = EvalCache(disk_dir=shared)
        for i in range(10):
            assert fresh.get(f"shared-{i}") is not None
        for worker in (0, 1):
            for i in range(50):
                assert fresh.get(f"private-{worker}-{i}") == float(i)
        assert list(shared.rglob("*.tmp")) == []


# -- fix 2: worker failure context --------------------------------------------

_POISON = 13


def _explode_on_poison(x):
    if x == _POISON:
        raise ValueError(f"poisoned item {x}")
    return x * x


class TestWorkerFailureContext:
    def test_process_failure_names_item_index_and_repr(self):
        items = list(range(20))
        with ParallelRunner(jobs=2, chunk_size=3) as runner:
            with pytest.raises(ParallelExecutionError) as excinfo:
                runner.map(_explode_on_poison, items)
        error = excinfo.value
        assert error.item_index == items.index(_POISON)
        assert "13" in error.item_repr
        # the original exception's text rides along in the message
        assert "poisoned item 13" in str(error)

    def test_thread_failure_names_item_index_and_repr(self):
        items = list(range(20))
        with ParallelRunner(jobs=2, mode="thread", chunk_size=1) as runner:
            with pytest.raises(ParallelExecutionError) as excinfo:
                runner.map(_explode_on_poison, items)
        assert excinfo.value.item_index == items.index(_POISON)

    def test_wrapped_error_is_catchable_as_repro_error(self):
        from repro.errors import ReproError

        with ParallelRunner(jobs=2, mode="thread", chunk_size=1) as runner:
            with pytest.raises(ReproError):
                runner.map(_explode_on_poison, [_POISON, 1])

    def test_inline_path_raises_the_original_exception(self):
        runner = ParallelRunner(jobs=1)
        with pytest.raises(ValueError, match="poisoned item 13"):
            runner.map(_explode_on_poison, [1, _POISON, 2])

    def test_pending_chunks_are_cancelled(self):
        """After a failure, chunks that have not started are cancelled
        rather than drained.  Pre-fix, the runner's shutdown executed
        every queued chunk anyway; post-fix only the chunks already
        in flight when the failure surfaced can run."""
        executed = []

        def record_and_fail(x):
            executed.append(x)
            raise ValueError("boom")

        with ParallelRunner(jobs=2, mode="thread", chunk_size=1) as runner:
            with pytest.raises(ParallelExecutionError):
                runner.map(record_and_fail, list(range(40)))
        assert len(executed) < 40


class TestCompletedItems:
    """``ParallelExecutionError.completed_items`` credits the contiguous
    prefix of items known finished before the failure, so callers (e.g.
    a checkpointed DSE chunk loop) can reason about lost work."""

    def test_pooled_failure_reports_contiguous_prefix(self):
        items = list(range(20))
        with ParallelRunner(jobs=2, chunk_size=3) as runner:
            with pytest.raises(ParallelExecutionError) as excinfo:
                runner.map(_explode_on_poison, items)
        error = excinfo.value
        assert error.completed_items == error.item_index
        assert 0 <= error.completed_items < len(items)

    def test_failure_on_first_item_reports_zero(self):
        with ParallelRunner(jobs=2, mode="thread", chunk_size=1) as runner:
            with pytest.raises(ParallelExecutionError) as excinfo:
                runner.map(_explode_on_poison, [_POISON, 1, 2])
        assert excinfo.value.completed_items == 0

    def test_default_is_zero(self):
        error = ParallelExecutionError("boom", item_index=3, item_repr="x")
        assert error.completed_items == 0


# -- fix 3: fallback-key collisions -------------------------------------------

class _AdHocDevice:
    """A device repro.io cannot serialize (not in KNOWN_DEVICES)."""

    def __init__(self, name):
        self.name = name


class _AdHocConfig:
    def __init__(self, device_name="prototype-a"):
        self.device = _AdHocDevice(device_name)

    def describe(self):
        return "64x64 P_eng=8 P_task=1"


class _OtherAdHocConfig:
    def __init__(self, device_name="prototype-a"):
        self.device = _AdHocDevice(device_name)

    def describe(self):
        return "64x64 P_eng=8 P_task=1"  # identical describe string


class TestFallbackKeyCollision:
    def test_different_classes_same_describe_do_not_collide(self):
        cache = EvalCache()
        key_a = cache.key_for_config("e", _AdHocConfig(), batch=1)
        key_b = cache.key_for_config("e", _OtherAdHocConfig(), batch=1)
        assert key_a != key_b  # pre-fix: equal describe => equal key

    def test_different_device_names_do_not_collide(self):
        cache = EvalCache()
        key_a = cache.key_for_config(
            "e", _AdHocConfig("prototype-a"), batch=1
        )
        key_b = cache.key_for_config(
            "e", _AdHocConfig("prototype-b"), batch=1
        )
        assert key_a != key_b

    def test_same_adhoc_config_still_memoizes(self):
        cache = EvalCache()
        key_1 = cache.key_for_config("e", _AdHocConfig(), batch=1)
        key_2 = cache.key_for_config("e", _AdHocConfig(), batch=1)
        assert key_1 == key_2
        cache.put(key_1, 1.5)
        assert cache.get(key_2) == 1.5

    def test_serializable_configs_unaffected(self):
        from repro.core.dse import DesignSpaceExplorer

        explorer = DesignSpaceExplorer(64, 64)
        config = explorer.make_config(4, 1)
        cache = EvalCache()
        assert cache.key_for_config("e", config, batch=1) == \
            cache.key_for_config("e", config, batch=1)

    def test_deviceless_config_still_gets_a_fallback_key(self):
        class Deviceless:
            def describe(self):
                return "bare"

        from repro.io import config_to_dict

        with pytest.raises(AttributeError):
            # sanity: repro.io cannot serialize this shape at all
            config_to_dict(Deviceless())

        cache = EvalCache()
        key = cache.key_for_config("e", Deviceless())
        assert key == cache.key_for_config("e", Deviceless())
