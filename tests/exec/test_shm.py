"""Zero-copy shared-memory fan-out (:mod:`repro.exec.shm`).

Covers the pack/resolve round trip, id-deduplication, the silent
pickle fallback, read-only worker views, segment lifecycle (no leaked
``/dev/shm`` entries), and end-to-end parity of
:meth:`repro.exec.parallel.ParallelRunner.map` with shared memory on,
off, and in thread mode (where it never engages).
"""

import numpy as np
import pytest

from repro.exec import shm
from repro.exec.parallel import ParallelRunner

pytestmark = pytest.mark.skipif(
    not shm.shm_supported(), reason="multiprocessing.shared_memory missing"
)


def _frob(a):
    return float(np.linalg.norm(a))


def _tuple_payload(t):
    a, i = t
    return float(a[0, 0]) + i


def _mutate(a):
    try:
        a[0, 0] = 1.0
        return "wrote"
    except ValueError:
        return "readonly"


class TestPackResolve:
    def test_roundtrip_preserves_values_and_order(self, rng):
        c_arr = np.ascontiguousarray(rng.standard_normal((64, 48)))
        f_arr = np.asfortranarray(rng.standard_normal((48, 64)))
        items = [c_arr, f_arr]
        segment, packed = shm.pack_items(items, min_bytes=1)
        assert segment is not None
        try:
            assert all(isinstance(p, shm.ShmArrayRef) for p in packed)
            attachments = {}
            try:
                out_c = shm.resolve_item(packed[0], attachments)
                out_f = shm.resolve_item(packed[1], attachments)
                np.testing.assert_array_equal(out_c, c_arr)
                np.testing.assert_array_equal(out_f, f_arr)
                assert not out_c.flags.writeable
                assert out_f.flags.f_contiguous
                assert out_c.flags.c_contiguous
            finally:
                shm.close_attachments(attachments)
        finally:
            shm.release_segment(segment)

    def test_nested_containers_and_passthrough(self, rng):
        big = rng.standard_normal((64, 64))
        item = {"matrix": big, "meta": ("tag", [1, 2]), "n": 3}
        segment, packed = shm.pack_items([item], min_bytes=1)
        assert segment is not None
        try:
            assert isinstance(packed[0]["matrix"], shm.ShmArrayRef)
            assert packed[0]["meta"] == ("tag", [1, 2])
            attachments = {}
            try:
                resolved = shm.resolve_item(packed[0], attachments)
                np.testing.assert_array_equal(resolved["matrix"], big)
                assert resolved["n"] == 3
            finally:
                shm.close_attachments(attachments)
        finally:
            shm.release_segment(segment)

    def test_duplicate_arrays_stored_once(self, rng):
        a = rng.standard_normal((64, 64))
        segment, packed = shm.pack_items([(a, 0), (a, 1)], min_bytes=1)
        assert segment is not None
        try:
            ref0, ref1 = packed[0][0], packed[1][0]
            assert ref0.offset == ref1.offset
            assert segment.size < 2 * a.nbytes + 128
        finally:
            shm.release_segment(segment)

    def test_small_arrays_fall_back_to_pickle(self, rng):
        tiny = rng.standard_normal((4, 4))
        segment, packed = shm.pack_items([tiny], min_bytes=shm.SHM_MIN_BYTES)
        assert segment is None
        assert packed[0] is tiny

    def test_object_dtype_is_never_packed(self):
        arr = np.empty((200, 200), dtype=object)
        segment, packed = shm.pack_items([arr], min_bytes=1)
        assert segment is None
        assert packed[0] is arr

    def test_non_array_items_pass_through(self):
        items = [1, "two", {"three": 3}]
        segment, packed = shm.pack_items(items, min_bytes=1)
        assert segment is None
        assert packed is items

    def test_ref_pickles_compactly(self, rng):
        import pickle

        big = rng.standard_normal((128, 128))
        segment, packed = shm.pack_items([big], min_bytes=1)
        try:
            blob = pickle.dumps(packed[0])
            assert len(blob) < 512  # vs ~128 KiB for the array itself
            clone = pickle.loads(blob)
            assert clone.shape == (128, 128)
            assert clone.offset == packed[0].offset
        finally:
            shm.release_segment(segment)


class TestRunnerIntegration:
    def test_map_parity_with_shm(self, rng):
        mats = [rng.standard_normal((96, 96)) for _ in range(6)]
        expected = [_frob(m) for m in mats]
        with ParallelRunner(jobs=2, mode="process", shm_min_bytes=1) as r:
            assert r._shm_enabled()
            got = r.map(_frob, mats)
        np.testing.assert_allclose(got, expected)

    def test_map_parity_with_shm_disabled(self, rng):
        mats = [rng.standard_normal((64, 64)) for _ in range(4)]
        expected = [_frob(m) for m in mats]
        with ParallelRunner(jobs=2, mode="process",
                            shared_memory=False) as r:
            assert not r._shm_enabled()
            np.testing.assert_allclose(r.map(_frob, mats), expected)

    def test_thread_mode_never_packs(self, rng):
        with ParallelRunner(jobs=2, mode="thread") as r:
            assert not r._shm_enabled()
            mats = [rng.standard_normal((64, 64)) for _ in range(4)]
            np.testing.assert_allclose(
                r.map(_frob, mats), [_frob(m) for m in mats]
            )

    def test_worker_views_are_read_only(self, rng):
        mats = [rng.standard_normal((96, 96)) for _ in range(4)]
        with ParallelRunner(jobs=2, mode="process", shm_min_bytes=1) as r:
            flags = r.map(_mutate, mats)
        assert set(flags) == {"readonly"}
        # ...and the parent's originals were not modified through the
        # segment (pack copies; the originals never left this process).
        assert all(m[0, 0] != 1.0 or True for m in mats)

    def test_tuple_payloads_with_shared_array(self, rng):
        a = rng.standard_normal((96, 96))
        items = [(a, i) for i in range(4)]
        with ParallelRunner(jobs=2, mode="process", shm_min_bytes=1) as r:
            got = r.map(_tuple_payload, items)
        np.testing.assert_allclose(
            got, [float(a[0, 0]) + i for i in range(4)]
        )

    def test_no_leaked_segments(self, rng):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        mats = [rng.standard_normal((96, 96)) for _ in range(4)]
        with ParallelRunner(jobs=2, mode="process", shm_min_bytes=1) as r:
            r.map(_frob, mats)
            r.map(_frob, mats)
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked

    def test_counters_record_traffic(self, rng):
        from repro.obs import metrics

        registry = metrics.get_metrics()
        registry.enable()
        try:
            registry.reset()
            mats = [rng.standard_normal((96, 96)) for _ in range(4)]
            with ParallelRunner(jobs=2, mode="process",
                                shm_min_bytes=1) as r:
                r.map(_frob, mats)
            snapshot = registry.snapshot()
            counters = snapshot.get("counters", snapshot)
            assert counters.get("parallel.shm_segments", 0) >= 1
            assert counters.get("parallel.shm_arrays", 0) >= 4
        finally:
            registry.reset()
            registry.disable()

    def test_shm_min_bytes_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ParallelRunner(jobs=2, shm_min_bytes=0)
