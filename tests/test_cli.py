"""Tests for the ``heterosvd`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_svd_defaults(self):
        args = build_parser().parse_args(["svd"])
        assert args.size == 128
        assert args.p_eng == 8

    def test_dse_objective_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--objective", "area"])

    def test_parallel_flag_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.jobs is None
        assert args.cache is None

    def test_cache_flag_default_directory(self):
        args = build_parser().parse_args(["dse", "--cache"])
        assert args.cache == ".repro_cache"
        args = build_parser().parse_args(["dse", "--cache", "/tmp/c"])
        assert args.cache == "/tmp/c"

    def test_dse_sharded_flags(self):
        args = build_parser().parse_args(["dse"])
        assert args.shards is None
        assert args.shard_id is None
        assert args.lease_ttl == 10.0
        assert args.shard_seed == 0
        assert args.steal is True
        assert args.workdir == ".heterosvd_dse"
        assert args.orderings == "codesign,traditional"
        assert args.derates == "1.0,0.9"
        args = build_parser().parse_args(
            ["dse", "--shards", "4", "--shard-id", "2", "--no-steal",
             "--lease-ttl", "2.5"]
        )
        assert (args.shards, args.shard_id) == (4, 2)
        assert args.steal is False
        assert args.lease_ttl == 2.5

    def test_dse_merge_flags(self):
        args = build_parser().parse_args(["dse-merge"])
        assert args.workdir == ".heterosvd_dse"
        assert args.recover is False
        assert args.objective == "latency"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse-merge", "--objective", "area"])

    def test_svd_batch_flags(self):
        args = build_parser().parse_args(["svd", "--batch", "4"])
        assert args.batch == 4
        assert args.p_task == 2
        assert args.engine == "accelerator"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--engine", "quantum"])

    def test_sensitivity_jobs_flag(self):
        args = build_parser().parse_args(["sensitivity", "--jobs", "2"])
        assert args.jobs == 2

    def test_svd_strategy_flag(self):
        args = build_parser().parse_args(["svd"])
        assert args.strategy == "auto"
        args = build_parser().parse_args(["svd", "--strategy", "scalar"])
        assert args.strategy == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--strategy", "simd"])

    def test_guard_flags(self):
        args = build_parser().parse_args(["svd"])
        assert args.validate is True
        assert args.check_invariants is False
        assert args.deadline is None
        args = build_parser().parse_args(
            ["svd", "--no-validate", "--check-invariants",
             "--deadline", "1.5"]
        )
        assert args.validate is False
        assert args.check_invariants is True
        assert args.deadline == 1.5

    def test_deadline_flag_on_sweep_commands(self):
        assert build_parser().parse_args(
            ["dse", "--deadline", "10"]
        ).deadline == 10.0
        assert build_parser().parse_args(
            ["sensitivity", "--deadline", "10"]
        ).deadline == 10.0


class TestCommands:
    def test_svd_command(self, capsys):
        assert main(["svd", "--size", "16", "--p-eng", "2"]) == 0
        out = capsys.readouterr().out
        assert "singular values" in out
        assert "LAPACK" in out

    @pytest.mark.parametrize("method", ["block", "hestenes", "tsqr",
                                        "dnc", "streaming"])
    def test_svd_software_methods(self, capsys, method):
        assert main(["svd", "--size", "16", "--p-eng", "2",
                     "--method", method]) == 0
        out = capsys.readouterr().out
        assert f"method={method}" in out
        deviation = float(out.split("max deviation vs LAPACK: ")[1]
                          .split()[0])
        assert deviation < 1e-6

    def test_svd_method_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--method", "qr"])

    def test_svd_method_saves_factors(self, tmp_path, capsys, rng):
        out_path = tmp_path / "factors.npz"
        assert main(["svd", "--size", "12", "--method", "dnc",
                     "--output", str(out_path)]) == 0
        saved = np.load(out_path)
        assert set(saved.files) == {"u", "sigma", "v"}
        assert saved["u"].shape == (12, 12)

    def test_svd_batch_with_method(self, capsys):
        assert main(["svd", "--size", "16", "--batch", "3",
                     "--p-eng", "2", "--method", "tsqr"]) == 0
        out = capsys.readouterr().out
        assert "software engine, tsqr method" in out

    def test_svd_stdout_identical_across_strategies(self, capsys):
        """The default accelerator path is strategy-independent.

        ``--strategy`` tunes the software solver's inner loop only, so
        the default CLI output must stay byte-identical — the parity
        contract of docs/performance.md.
        """
        assert main(["svd", "--size", "16", "--p-eng", "2"]) == 0
        default_out = capsys.readouterr().out
        for strategy in ("scalar", "vectorized"):
            assert main(["svd", "--size", "16", "--p-eng", "2",
                         "--strategy", strategy]) == 0
            assert capsys.readouterr().out == default_out

    def test_svd_batch_software_strategies_agree(self, capsys):
        """Both inner-loop strategies solve the batch accurately."""
        deviations = []
        for strategy in ("scalar", "vectorized"):
            assert main([
                "svd", "--batch", "2", "--size", "16", "--p-eng", "4",
                "--engine", "software", "--jobs", "1",
                "--strategy", strategy,
            ]) == 0
            out = capsys.readouterr().out
            line = next(l for l in out.splitlines()
                        if "max deviation" in l)
            deviations.append(float(line.split()[-1]))
        assert all(d < 1e-6 for d in deviations)

    def test_svd_with_file_io(self, tmp_path, capsys, rng):
        matrix = rng.standard_normal((12, 12))
        in_path = tmp_path / "a.npy"
        out_path = tmp_path / "factors.npz"
        np.save(in_path, matrix)
        code = main([
            "svd", "--input", str(in_path), "--output", str(out_path),
            "--p-eng", "4",
        ])
        assert code == 0
        factors = np.load(out_path)
        assert factors["sigma"].shape == (12,)
        s_ref = np.linalg.svd(matrix, compute_uv=False)
        assert np.allclose(np.sort(factors["sigma"])[::-1], s_ref, rtol=1e-5)

    def test_svd_pads_odd_widths(self, tmp_path, capsys, rng):
        matrix = rng.standard_normal((12, 10))
        in_path = tmp_path / "a.npy"
        np.save(in_path, matrix)
        assert main(["svd", "--input", str(in_path), "--p-eng", "4"]) == 0

    def test_dse_command(self, capsys):
        assert main(["dse", "--size", "128", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "P_eng" in out
        assert "rank" in out

    def test_svd_batch_command(self, capsys):
        assert main([
            "svd", "--size", "24", "--p-eng", "4", "--batch", "3",
            "--p-task", "2", "--jobs", "1", "--precision", "1e-4",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 24x24 SVDs on 2 pipelines" in out
        assert "pipeline 0" in out
        assert "LAPACK" in out

    def test_svd_batch_rejects_input_file(self, tmp_path, capsys, rng):
        in_path = tmp_path / "a.npy"
        np.save(in_path, rng.standard_normal((8, 8)))
        code = main([
            "svd", "--input", str(in_path), "--batch", "2", "--p-eng", "4",
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dse_with_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "repro_cache")
        argv = [
            "dse", "--size", "64", "--jobs", "2", "--cache", cache_dir,
            "--top", "2",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache: " in cold
        assert main(argv) == 0  # warm re-run: served from disk
        warm = capsys.readouterr().out
        assert "0 misses" in warm
        assert cold.splitlines()[:7] == warm.splitlines()[:7]

    def test_dse_with_power_cap(self, capsys):
        assert main([
            "dse", "--size", "128", "--objective", "throughput",
            "--batch", "10", "--power-cap", "39", "--top", "2",
        ]) == 0

    def test_dse_sharded_worker_and_merge(self, tmp_path, capsys):
        workdir = str(tmp_path / "sweep")
        worker = [
            "dse", "--size", "32", "--shards", "1", "--shard-id", "0",
            "--workdir", workdir, "--orderings", "codesign",
            "--derates", "1.0",
        ]
        assert main(worker) == 0
        out = capsys.readouterr().out
        assert "shard 0/1" in out
        assert main(["dse-merge", "--workdir", workdir, "--top", "3"]) == 0
        merged = capsys.readouterr()
        assert "ordering" in merged.out  # widened-frontier table
        assert "merge:" in merged.err

    def test_dse_merge_incomplete_then_recovered(self, tmp_path, capsys):
        workdir = str(tmp_path / "sweep")
        # Only one of two shards ever runs; no stealing.
        assert main([
            "dse", "--size", "32", "--shards", "2", "--shard-id", "0",
            "--workdir", workdir, "--orderings", "codesign",
            "--derates", "1.0", "--no-steal",
        ]) == 0
        capsys.readouterr()
        assert main(["dse-merge", "--workdir", workdir]) == 1
        assert "merge incomplete" in capsys.readouterr().err
        assert main(["dse-merge", "--workdir", workdir, "--recover"]) == 0
        capsys.readouterr()
        # The recovery ledger persisted; a plain merge now succeeds.
        assert main(["dse-merge", "--workdir", workdir]) == 0

    def test_model_command(self, capsys):
        assert main(["model", "--size", "128", "--p-eng", "4"]) == 0
        out = capsys.readouterr().out
        assert "t_iter" in out
        assert "simulated" in out

    def test_placement_command(self, capsys):
        assert main(["placement", "--p-eng", "8", "--p-task", "2"]) == 0
        out = capsys.readouterr().out
        assert "row 7" in out
        assert "O" in out


class TestAnalysisCommands:
    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--size", "128", "--p-eng", "4"]) == 0
        out = capsys.readouterr().out
        assert "plio_column_gap" in out

    def test_sensitivity_parallel_matches_serial(self, capsys):
        assert main(["sensitivity", "--size", "64", "--p-eng", "4"]) == 0
        serial = capsys.readouterr().out
        assert main([
            "sensitivity", "--size", "64", "--p-eng", "4", "--jobs", "2",
        ]) == 0
        assert capsys.readouterr().out == serial

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_report_command(self, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        assert main(["report", "--output", str(out_path)]) == 0
        content = out_path.read_text()
        assert "Table IV" in content
        assert "Fig. 3" in content
        assert content.startswith("<!DOCTYPE html>")


class TestGuardIntegration:
    def test_nan_input_exits_4(self, tmp_path, capsys):
        a = np.eye(8)
        a[0, 3] = np.nan
        path = tmp_path / "bad.npy"
        np.save(path, a)
        assert main(["svd", "--input", str(path)]) == 4
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "invalid input" in captured.err
        assert "non-finite" in captured.err

    def test_expired_deadline_exits_5_with_partial_progress(self, capsys):
        code = main(["dse", "--size", "64", "--deadline", "0.001"])
        assert code == 5
        err = capsys.readouterr().err
        assert "deadline" in err
        assert "partial progress" in err

    def test_expired_dse_hints_at_checkpoint_resume(self, tmp_path, capsys):
        ck = tmp_path / "dse.ckpt.json"
        code = main([
            "dse", "--size", "64", "--deadline", "0.001",
            "--checkpoint", str(ck),
        ])
        assert code == 5
        assert "--resume" in capsys.readouterr().err
        assert main([
            "dse", "--size", "64", "--top", "3",
            "--checkpoint", str(ck), "--resume",
        ]) == 0

    def test_check_invariants_prints_ok_line(self, capsys):
        assert main([
            "svd", "--size", "16", "--p-eng", "2", "--check-invariants",
        ]) == 0
        assert "invariants: ok" in capsys.readouterr().out

    def test_guard_flags_leave_default_stdout_untouched(self, capsys):
        assert main(["svd", "--size", "16", "--p-eng", "2"]) == 0
        baseline = capsys.readouterr().out
        assert main([
            "svd", "--size", "16", "--p-eng", "2",
            "--deadline", "300", "--validate",
        ]) == 0
        assert capsys.readouterr().out == baseline
