"""Tests for the ``heterosvd`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_svd_defaults(self):
        args = build_parser().parse_args(["svd"])
        assert args.size == 128
        assert args.p_eng == 8

    def test_dse_objective_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--objective", "area"])


class TestCommands:
    def test_svd_command(self, capsys):
        assert main(["svd", "--size", "16", "--p-eng", "2"]) == 0
        out = capsys.readouterr().out
        assert "singular values" in out
        assert "LAPACK" in out

    def test_svd_with_file_io(self, tmp_path, capsys, rng):
        matrix = rng.standard_normal((12, 12))
        in_path = tmp_path / "a.npy"
        out_path = tmp_path / "factors.npz"
        np.save(in_path, matrix)
        code = main([
            "svd", "--input", str(in_path), "--output", str(out_path),
            "--p-eng", "4",
        ])
        assert code == 0
        factors = np.load(out_path)
        assert factors["sigma"].shape == (12,)
        s_ref = np.linalg.svd(matrix, compute_uv=False)
        assert np.allclose(np.sort(factors["sigma"])[::-1], s_ref, rtol=1e-5)

    def test_svd_pads_odd_widths(self, tmp_path, capsys, rng):
        matrix = rng.standard_normal((12, 10))
        in_path = tmp_path / "a.npy"
        np.save(in_path, matrix)
        assert main(["svd", "--input", str(in_path), "--p-eng", "4"]) == 0

    def test_dse_command(self, capsys):
        assert main(["dse", "--size", "128", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "P_eng" in out
        assert "rank" in out

    def test_dse_with_power_cap(self, capsys):
        assert main([
            "dse", "--size", "128", "--objective", "throughput",
            "--batch", "10", "--power-cap", "39", "--top", "2",
        ]) == 0

    def test_model_command(self, capsys):
        assert main(["model", "--size", "128", "--p-eng", "4"]) == 0
        out = capsys.readouterr().out
        assert "t_iter" in out
        assert "simulated" in out

    def test_placement_command(self, capsys):
        assert main(["placement", "--p-eng", "8", "--p-task", "2"]) == 0
        out = capsys.readouterr().out
        assert "row 7" in out
        assert "O" in out


class TestAnalysisCommands:
    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--size", "128", "--p-eng", "4"]) == 0
        out = capsys.readouterr().out
        assert "plio_column_gap" in out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_report_command(self, tmp_path, capsys):
        out_path = tmp_path / "report.html"
        assert main(["report", "--output", str(out_path)]) == 0
        content = out_path.read_text()
        assert "Table IV" in content
        assert "Fig. 3" in content
        assert content.startswith("<!DOCTYPE html>")
