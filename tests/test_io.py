"""Tests for configuration / DSE result serialization."""

from dataclasses import replace

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.dse import DesignSpaceExplorer
from repro.errors import ConfigurationError
from repro.io import (
    config_from_dict,
    config_to_dict,
    load_config,
    load_configs,
    save_config,
    save_design_points,
)
from repro.versal.device import VCK190


def sample_config():
    return HeteroSVDConfig(
        m=128, n=128, p_eng=4, p_task=2,
        precision=1e-7, fixed_iterations=6, arithmetic="float32",
    )


class TestConfigRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = sample_config()
        restored = config_from_dict(config_to_dict(original))
        assert restored == original

    def test_file_roundtrip(self, tmp_path):
        original = sample_config()
        path = tmp_path / "config.json"
        save_config(original, path)
        assert load_config(path) == original

    def test_device_reattached(self, tmp_path):
        path = tmp_path / "config.json"
        save_config(sample_config(), path)
        assert load_config(path).device is VCK190

    def test_unknown_device_refused_on_save(self):
        odd_device = replace(VCK190, name="lab prototype")
        config = HeteroSVDConfig(m=64, n=64, p_eng=4, device=odd_device)
        with pytest.raises(ConfigurationError):
            config_to_dict(config)

    def test_unknown_device_refused_on_load(self):
        data = config_to_dict(sample_config())
        data["device"] = "martian part"
        with pytest.raises(ConfigurationError):
            config_from_dict(data)

    def test_missing_fields_detected(self):
        data = config_to_dict(sample_config())
        del data["p_eng"]
        with pytest.raises(ConfigurationError, match="p_eng"):
            config_from_dict(data)


class TestDesignPointSerialization:
    @pytest.fixture(scope="class")
    def points(self):
        dse = DesignSpaceExplorer(128, 128, fixed_iterations=6)
        return dse.explore("latency")[:5]

    def test_save_and_reload_configs(self, points, tmp_path):
        path = tmp_path / "dse.json"
        save_design_points(points, path)
        configs = load_configs(path)
        assert len(configs) == 5
        assert configs[0] == points[0].config

    def test_metrics_rederivable(self, points, tmp_path):
        from repro.core.perf_model import PerformanceModel

        path = tmp_path / "dse.json"
        save_design_points(points, path)
        config = load_configs(path)[0]
        assert PerformanceModel(config).task_time() == pytest.approx(
            points[0].latency
        )

    def test_file_is_json_with_format_marker(self, points, tmp_path):
        import json

        path = tmp_path / "dse.json"
        save_design_points(points, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "heterosvd-dse-results"
        assert payload["points"][0]["power"]["total"] > 0

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigurationError):
            load_configs(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_config(tmp_path / "missing.json")
