"""Unit tests for the public svd() entry point."""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.linalg.reference import validate_svd
from repro.linalg.svd import svd


class TestSVDShapes:
    @pytest.mark.parametrize(
        "shape",
        [(8, 8), (16, 8), (8, 16), (9, 9), (7, 12), (12, 7), (3, 2), (2, 3)],
    )
    def test_thin_factor_shapes(self, rng, shape):
        a = rng.standard_normal(shape)
        result = svd(a, precision=1e-10)
        r = min(shape)
        assert result.u.shape == (shape[0], r)
        assert result.singular_values.shape == (r,)
        assert result.v.shape == (shape[1], r)

    @pytest.mark.parametrize(
        "shape",
        [(8, 8), (16, 8), (8, 16), (9, 9), (7, 12), (13, 5), (1, 4), (4, 1)],
    )
    def test_accuracy_all_shapes(self, rng, shape):
        a = rng.standard_normal(shape)
        result = svd(a, precision=1e-10)
        report = validate_svd(a, result.u, result.singular_values, result.v)
        assert report.within(1e-7), report

    def test_reconstruct_method(self, rng):
        a = rng.standard_normal((10, 6))
        result = svd(a, precision=1e-10)
        assert np.allclose(result.reconstruct(), a, atol=1e-9)


class TestSVDMethods:
    def test_block_method_matches_hestenes(self, rng):
        a = rng.standard_normal((24, 16))
        s1 = svd(a, method="hestenes", precision=1e-10).singular_values
        s2 = svd(
            a, method="block", block_width=4, precision=1e-10
        ).singular_values
        assert np.allclose(s1, s2, rtol=1e-8)

    def test_block_method_default_width(self, rng):
        a = rng.standard_normal((32, 32))
        result = svd(a, method="block", precision=1e-9)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_block_widths(self, rng, width):
        a = rng.standard_normal((32, 16))
        result = svd(a, method="block", block_width=width, precision=1e-9)
        report = validate_svd(a, result.u, result.singular_values, result.v)
        assert report.within(1e-6)

    def test_unknown_method(self, rng):
        with pytest.raises(NumericalError):
            svd(rng.standard_normal((4, 4)), method="qr")

    def test_fixed_sweeps_recorded(self, rng):
        a = rng.standard_normal((8, 6))
        result = svd(a, fixed_sweeps=3)
        assert result.sweeps == 3
        assert len(result.sweep_residuals) == 3


class TestSVDEdgeCases:
    def test_zero_matrix(self):
        result = svd(np.zeros((6, 4)))
        assert np.allclose(result.singular_values, 0.0)

    def test_rank_one(self, rng):
        a = np.outer(rng.standard_normal(9), rng.standard_normal(5))
        result = svd(a, precision=1e-10)
        assert result.singular_values[0] > 0
        assert np.allclose(result.singular_values[1:], 0.0, atol=1e-8)
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_identity(self):
        result = svd(np.eye(6), precision=1e-10)
        assert np.allclose(result.singular_values, 1.0)

    def test_single_column(self, rng):
        a = rng.standard_normal((8, 1))
        result = svd(a)
        assert result.singular_values[0] == pytest.approx(np.linalg.norm(a))

    def test_rejects_empty(self):
        with pytest.raises(NumericalError):
            svd(np.zeros((0, 4)))

    def test_rejects_1d(self):
        with pytest.raises(NumericalError):
            svd(np.ones(5))

    def test_scaling_equivariance(self, rng):
        a = rng.standard_normal((10, 6))
        s1 = svd(a, precision=1e-10).singular_values
        s2 = svd(3.0 * a, precision=1e-10).singular_values
        assert np.allclose(s2, 3.0 * s1, rtol=1e-8)

    def test_padded_v_stays_orthonormal(self, rng):
        # Odd column count exercises the padding path.
        a = rng.standard_normal((10, 7))
        result = svd(a, precision=1e-10)
        gram = result.v.T @ result.v
        assert np.allclose(gram, np.eye(7), atol=1e-8)
