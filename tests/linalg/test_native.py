"""Kernel-level tests for the native (compiled) Jacobi tier.

The ``@njit`` decorator degrades to a no-op without Numba, so the
kernel bodies in :mod:`repro.linalg.native` stay executable as plain
Python.  These tests pin the kernels' *arithmetic* against the golden
NumPy implementations — Gram accumulation, the range-gated rescale,
the identity test, the rotation accounting — in every environment,
whether or not a JIT compiler is present.  The compiled tier's speed
is checked separately (TestAcceptance256 in test_strategy_parity.py,
CI's Numba leg).
"""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.linalg import native
from repro.linalg.hestenes import (
    _sweep_pairs_indexed,
    resolve_strategy,
)
from repro.linalg.rotations import compute_rotations_batch


def _py_rotations(alpha, beta, gamma):
    """Run the kernel body as plain Python (works with or without
    Numba: ``py_func`` unwraps a compiled dispatcher)."""
    kernel = getattr(native._rotations_kernel, "py_func",
                     native._rotations_kernel)
    c = np.empty_like(alpha)
    s = np.empty_like(alpha)
    identity = np.empty(alpha.shape, dtype=np.bool_)
    kernel(alpha, beta, gamma, c, s, identity)
    return c, s, identity


def _py_sweep(b, v, ii, jj, precision, zero_sq):
    kernel = getattr(native._sweep_kernel, "py_func",
                     native._sweep_kernel)
    if v is None:
        return kernel(b, native._EMPTY_V, ii, jj, precision, zero_sq,
                      False)
    return kernel(b, v, ii, jj, precision, zero_sq, True)


class TestRotationsKernel:
    def test_matches_numpy_batch(self, rng):
        n = 64
        x = rng.standard_normal((40, n))
        y = rng.standard_normal((40, n))
        alpha = np.einsum("ij,ij->j", x, x)
        beta = np.einsum("ij,ij->j", y, y)
        gamma = np.einsum("ij,ij->j", x, y)

        ref_c, ref_s, ref_id = compute_rotations_batch(alpha, beta, gamma)
        c, s, identity = _py_rotations(alpha, beta, gamma)

        np.testing.assert_array_equal(identity, ref_id)
        np.testing.assert_allclose(c, ref_c, rtol=0.0, atol=1e-15)
        np.testing.assert_allclose(s, ref_s, rtol=0.0, atol=1e-15)

    def test_extreme_scale_lanes(self):
        # Lanes whose Gram entries over/underflow a naive tau formula:
        # the rescale gate must produce the same angles the scalar
        # routine's frexp/ldexp path does.
        alpha = np.array([1e300, 1e-300, 4.0, 1e308])
        beta = np.array([2e300, 3e-300, 1.0, 1e307])
        gamma = np.array([5e299, 1e-300, 1.0, 5e307])
        ref_c, ref_s, ref_id = compute_rotations_batch(alpha, beta, gamma)
        c, s, identity = _py_rotations(alpha, beta, gamma)
        np.testing.assert_array_equal(identity, ref_id)
        np.testing.assert_allclose(c, ref_c, rtol=0.0, atol=1e-15)
        np.testing.assert_allclose(s, ref_s, rtol=0.0, atol=1e-15)
        assert np.all(np.isfinite(c)) and np.all(np.isfinite(s))

    def test_orthogonal_lane_is_identity(self):
        c, s, identity = _py_rotations(
            np.array([4.0]), np.array([1.0]), np.array([0.0])
        )
        assert identity[0]
        assert c[0] == 1.0 and s[0] == 0.0

    def test_wrapper_validates_like_numpy(self):
        with pytest.raises(NumericalError):
            native.rotations_batch(
                np.array([1.0]), np.array([np.nan]), np.array([0.5])
            )
        with pytest.raises(NumericalError):
            native.rotations_batch(
                np.array([-1.0]), np.array([1.0]), np.array([0.5])
            )

    def test_wrapper_matches_numpy_batch(self, rng):
        alpha = rng.uniform(0.5, 2.0, 16)
        beta = rng.uniform(0.5, 2.0, 16)
        gamma = rng.standard_normal(16)
        ref = compute_rotations_batch(alpha, beta, gamma)
        got = native.rotations_batch(alpha, beta, gamma)
        for got_arr, ref_arr in zip(got, ref):
            np.testing.assert_allclose(got_arr, ref_arr,
                                       rtol=0.0, atol=1e-15)


class TestSweepKernel:
    def _round(self, rng, n=16):
        b = np.asfortranarray(rng.standard_normal((n, n)))
        v = np.asfortranarray(np.eye(n))
        half = n // 2
        ii = np.arange(half, dtype=np.intp)
        jj = np.arange(half, n, dtype=np.intp)
        return b, v, ii, jj

    def test_matches_vectorized_round(self, rng):
        b, v, ii, jj = self._round(rng)
        b_ref, v_ref = b.copy(order="F"), v.copy(order="F")

        worst, count = _py_sweep(b, v, ii, jj, 1e-12, 0.0)
        ref_worst, ref_count = _sweep_pairs_indexed(
            b_ref, v_ref, ii, jj, 1e-12, 0.0
        )

        assert count == ref_count
        assert worst == pytest.approx(ref_worst, rel=1e-12)
        np.testing.assert_allclose(b, b_ref, atol=1e-13)
        np.testing.assert_allclose(v, v_ref, atol=1e-13)

    def test_none_v_updates_only_b(self, rng):
        b, v, ii, jj = self._round(rng)
        b_ref = b.copy(order="F")
        worst, count = _py_sweep(b, None, ii, jj, 1e-12, 0.0)
        ref_worst, ref_count = _sweep_pairs_indexed(
            b_ref, None, ii, jj, 1e-12, 0.0
        )
        assert count == ref_count
        np.testing.assert_allclose(b, b_ref, atol=1e-13)

    def test_zero_sq_floor_skips_dead_columns(self, rng):
        b, v, ii, jj = self._round(rng, n=8)
        b[:, int(ii[0])] = 1e-200  # far below the floor below
        floor = 1e-100
        before = b[:, int(jj[0])].copy()
        _py_sweep(b, v, ii, jj, 1e-12, floor)
        # The dead pair reports ratio 0 and must not rotate.
        np.testing.assert_array_equal(b[:, int(jj[0])], before)

    def test_precision_gate_counts_like_scalar(self, rng):
        # With an impossible precision nothing rotates and count is 0;
        # with precision 0 every pair is counted (identity or not).
        b, v, ii, jj = self._round(rng)
        worst, count = _py_sweep(b.copy(order="F"), v.copy(order="F"),
                                 ii, jj, 2.0, 0.0)
        assert count == 0
        worst2, count2 = _py_sweep(b.copy(order="F"), v.copy(order="F"),
                                   ii, jj, 0.0, 0.0)
        assert count2 == ii.size

    def test_wrapper_delegates_without_numba(self, rng, monkeypatch):
        monkeypatch.setattr(native, "NUMBA_AVAILABLE", False)
        b, v, ii, jj = self._round(rng)
        b_ref, v_ref = b.copy(order="F"), v.copy(order="F")
        worst, count = native.sweep_pairs_indexed(b, v, ii, jj, 1e-12, 0.0)
        ref = _sweep_pairs_indexed(b_ref, v_ref, ii, jj, 1e-12, 0.0)
        assert (worst, count) == ref
        np.testing.assert_array_equal(b, b_ref)


class TestAvailabilityProbe:
    def test_available_tracks_numba_flag(self, monkeypatch):
        monkeypatch.delenv(native.DISABLE_ENV_VAR, raising=False)
        monkeypatch.setattr(native, "NUMBA_AVAILABLE", True)
        assert native.available()
        monkeypatch.setattr(native, "NUMBA_AVAILABLE", False)
        assert not native.available()

    def test_env_var_wins_over_numba(self, monkeypatch):
        monkeypatch.setattr(native, "NUMBA_AVAILABLE", True)
        monkeypatch.setenv(native.DISABLE_ENV_VAR, "1")
        assert not native.available()
        monkeypatch.setenv(native.DISABLE_ENV_VAR, "0")
        assert native.available()

    def test_full_driver_runs_under_forced_fallback(self, rng,
                                                    monkeypatch):
        # The regression scenario from the issue: an environment
        # without Numba asking for strategy="native" must compute the
        # correct SVD via the vectorized tier, not raise.
        from repro.linalg import hestenes_svd, svd

        monkeypatch.setattr(native, "NUMBA_AVAILABLE", False)
        assert resolve_strategy("native") == "vectorized"
        a = rng.standard_normal((24, 24))
        result = hestenes_svd(a, strategy="native")
        reference = np.linalg.svd(a, compute_uv=False)
        np.testing.assert_allclose(
            result.singular_values, reference, atol=1e-10 * reference[0]
        )
        block = svd(a, method="block", block_width=6, strategy="native")
        np.testing.assert_allclose(
            block.singular_values, reference, atol=1e-10 * reference[0]
        )
