"""Unit tests for column-block partitioning and block-pair enumeration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.linalg.block import (
    BlockPartition,
    block_pair_rounds,
    block_pairs,
)


class TestBlockPartition:
    def test_basic_counts(self):
        part = BlockPartition(n_cols=16, block_width=4)
        assert part.n_blocks == 4
        assert part.n_block_pairs == 6

    def test_block_columns(self):
        part = BlockPartition(n_cols=12, block_width=3)
        assert part.block_columns(0) == [0, 1, 2]
        assert part.block_columns(3) == [9, 10, 11]

    def test_pair_columns_order(self):
        part = BlockPartition(n_cols=8, block_width=2)
        assert part.pair_columns((1, 3)) == [2, 3, 6, 7]

    def test_extract_and_scatter_roundtrip(self, rng):
        part = BlockPartition(n_cols=8, block_width=2)
        a = rng.standard_normal((5, 8))
        original = a.copy()
        pair = (0, 2)
        data = part.extract_pair(a, pair)
        assert data.shape == (5, 4)
        part.scatter_pair(a, pair, data * 2)
        assert np.allclose(a[:, [0, 1, 4, 5]], original[:, [0, 1, 4, 5]] * 2)
        assert np.allclose(a[:, [2, 3, 6, 7]], original[:, [2, 3, 6, 7]])

    def test_scatter_shape_mismatch(self, rng):
        part = BlockPartition(n_cols=8, block_width=2)
        a = rng.standard_normal((5, 8))
        with pytest.raises(ConfigurationError):
            part.scatter_pair(a, (0, 1), np.zeros((5, 3)))

    def test_invalid_block_index(self):
        part = BlockPartition(n_cols=8, block_width=2)
        with pytest.raises(ConfigurationError):
            part.block_columns(4)

    @pytest.mark.parametrize(
        "n_cols,width",
        [(8, 0), (8, 5), (4, 4), (7, 2), (2, 2)],
    )
    def test_invalid_partitions(self, n_cols, width):
        with pytest.raises(ConfigurationError):
            BlockPartition(n_cols=n_cols, block_width=width)


class TestBlockPairs:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 13])
    def test_enumerates_each_pair_once(self, p):
        pairs = block_pairs(p)
        assert len(pairs) == p * (p - 1) // 2
        assert len(set(pairs)) == len(pairs)
        for u, v in pairs:
            assert 0 <= u < v < p

    def test_rejects_single_block(self):
        with pytest.raises(ConfigurationError):
            block_pairs(1)

    def test_round_robin_locality(self):
        # Tournament schedule: consecutive rounds reuse blocks heavily,
        # but within a round blocks are disjoint.
        for one_round in block_pair_rounds(8):
            blocks = [b for pair in one_round for b in pair]
            assert len(blocks) == len(set(blocks))

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_odd_block_counts_use_a_bye(self, p):
        rounds = block_pair_rounds(p)
        flat = [pair for r in rounds for pair in r]
        assert len(flat) == p * (p - 1) // 2
        assert all(0 <= u < v < p for u, v in flat)

    def test_rounds_flatten_to_pairs(self):
        rounds = block_pair_rounds(6)
        flat = [pair for r in rounds for pair in r]
        assert sorted(flat) == sorted(block_pairs(6))
