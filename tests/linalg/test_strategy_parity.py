"""Cross-strategy parity for the Jacobi inner-loop tiers.

The batched tiers (``vectorized``, ``native``) process each ordering
round (disjoint pairs) as one whole-round kernel.  These tests pin the
contract from docs/performance.md: same rotations in the same logical
order, so every strategy agrees on singular values (to floating-point
summation order), sweep counts, and residual histories — across the
monolithic and block drivers, odd block counts, wide, rank-deficient,
and complex inputs — and the batched tiers are substantially faster.

Without Numba installed, ``native`` resolves to ``vectorized``; the
native legs here then re-check the vectorized contract, and the real
compiled tier is exercised by the CI leg that installs Numba (see
tests/linalg/test_native.py for the kernel-level parity that runs
everywhere).
"""

import time

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.linalg import (
    BATCHED_STRATEGIES,
    STRATEGIES,
    hestenes_svd,
    native_available,
    resolve_strategy,
    sweep_pairs,
    svd,
)
from repro.linalg.orderings import (
    RingOrdering,
    RoundRobinOrdering,
    ShiftingRingOrdering,
)
from repro.workloads.matrices import low_rank_matrix, random_matrix


class TestResolveStrategy:
    def test_auto_probes_available_tiers(self):
        expected = "native" if native_available() else "vectorized"
        assert resolve_strategy("auto") == expected

    def test_native_degrades_without_numba(self, monkeypatch):
        from repro.linalg import native

        monkeypatch.setattr(native, "NUMBA_AVAILABLE", False)
        # Regression: "auto" used to map to "vectorized"
        # unconditionally; now it probes.  Both spellings must degrade
        # to the vectorized tier instead of raising NumericalError.
        assert resolve_strategy("auto") == "vectorized"
        assert resolve_strategy("native") == "vectorized"

    def test_native_resolves_when_numba_present(self, monkeypatch):
        from repro.linalg import native

        monkeypatch.setattr(native, "NUMBA_AVAILABLE", True)
        monkeypatch.delenv(native.DISABLE_ENV_VAR, raising=False)
        assert resolve_strategy("auto") == "native"
        assert resolve_strategy("native") == "native"

    def test_env_var_disables_native(self, monkeypatch):
        from repro.linalg import native

        monkeypatch.setattr(native, "NUMBA_AVAILABLE", True)
        monkeypatch.setenv(native.DISABLE_ENV_VAR, "1")
        assert resolve_strategy("auto") == "vectorized"
        assert resolve_strategy("native") == "vectorized"

    @pytest.mark.parametrize("name", ["scalar", "vectorized"])
    def test_explicit_passthrough(self, name):
        assert resolve_strategy(name) == name

    def test_resolution_is_idempotent(self):
        for name in STRATEGIES:
            resolved = resolve_strategy(name)
            assert resolve_strategy(resolved) == resolved

    def test_unknown_strategy_raises(self):
        with pytest.raises(NumericalError):
            resolve_strategy("simd")

    def test_registry_contents(self):
        assert STRATEGIES == ("auto", "scalar", "vectorized", "native")
        assert BATCHED_STRATEGIES == ("vectorized", "native")

    def test_unknown_strategy_raises_from_svd(self, square_matrix):
        with pytest.raises(NumericalError):
            svd(square_matrix, strategy="gpu")


def _both(a, **kwargs):
    scalar = hestenes_svd(a, strategy="scalar", **kwargs)
    vectorized = hestenes_svd(a, strategy="vectorized", **kwargs)
    return scalar, vectorized


class TestHestenesParity:
    def test_singular_values_and_sweeps(self, rng):
        a = rng.standard_normal((96, 96))
        scalar, vectorized = _both(a)
        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )
        assert scalar.sweeps == vectorized.sweeps
        assert scalar.converged and vectorized.converged

    def test_native_matches_scalar(self, rng):
        a = rng.standard_normal((64, 64))
        scalar = hestenes_svd(a, strategy="scalar")
        native = hestenes_svd(a, strategy="native")
        np.testing.assert_allclose(
            scalar.singular_values, native.singular_values,
            rtol=0.0, atol=1e-14 * scalar.singular_values[0] * 64,
        )
        assert scalar.sweeps == native.sweeps
        assert native.converged

    def test_residual_histories_match(self, rng):
        a = rng.standard_normal((32, 32))
        scalar, vectorized = _both(a)
        np.testing.assert_allclose(
            scalar.sweep_residuals, vectorized.sweep_residuals,
            rtol=1e-8,
        )

    def test_factors_reconstruct(self, rng):
        a = rng.standard_normal((48, 32))
        _, vectorized = _both(a)
        rebuilt = (vectorized.u * vectorized.singular_values) \
            @ vectorized.v.T
        np.testing.assert_allclose(rebuilt, a, atol=1e-8)

    @pytest.mark.parametrize(
        "ordering_cls",
        [RingOrdering, RoundRobinOrdering, ShiftingRingOrdering],
    )
    def test_every_ordering(self, rng, ordering_cls):
        a = rng.standard_normal((24, 24))
        scalar, vectorized = _both(a, ordering_cls=ordering_cls)
        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )
        assert scalar.sweeps == vectorized.sweeps

    def test_rank_deficient(self):
        a = low_rank_matrix(40, 40, rank=5, seed=3, noise=0.0)
        scalar, vectorized = _both(a)
        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * max(scalar.singular_values[0], 1.0),
        )

    def test_fixed_sweeps(self, rng):
        a = rng.standard_normal((20, 20))
        scalar, vectorized = _both(a, fixed_sweeps=3)
        assert scalar.sweeps == vectorized.sweeps == 3
        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )


class TestBlockAndSVDParity:
    @pytest.mark.parametrize("strategy", ["vectorized", "native"])
    @pytest.mark.parametrize("shape,block_width", [
        ((32, 32), 8),
        ((48, 48), 8),   # odd block count (p=3): tournament bye round
        ((16, 32), 4),   # wide input: transposed internally
        ((33, 16), 4),   # odd row count, rectangular blocks
    ])
    def test_block_method(self, rng, shape, block_width, strategy):
        a = rng.standard_normal(shape)
        scalar = svd(a, method="block", block_width=block_width,
                     strategy="scalar")
        batched = svd(a, method="block", block_width=block_width,
                      strategy=strategy)
        np.testing.assert_allclose(
            scalar.singular_values, batched.singular_values,
            rtol=0.0, atol=1e-10 * max(scalar.singular_values[0], 1.0),
        )
        assert scalar.sweeps == batched.sweeps

    def test_complex_input(self, rng):
        a = rng.standard_normal((24, 24)) \
            + 1j * rng.standard_normal((24, 24))
        scalar = svd(a, strategy="scalar")
        vectorized = svd(a, strategy="vectorized")
        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )

    def test_auto_matches_resolved_tier(self, rng):
        a = rng.standard_normal((32, 32))
        auto = svd(a, strategy="auto")
        resolved = svd(a, strategy=resolve_strategy("auto"))
        np.testing.assert_array_equal(
            auto.singular_values, resolved.singular_values
        )


class TestSweepPairs:
    def test_matches_scalar_round(self, rng):
        from repro.linalg.convergence import pair_convergence_ratio
        from repro.linalg.rotations import apply_rotation, \
            compute_rotation

        n = 16
        b_vec = np.asfortranarray(rng.standard_normal((n, n)))
        b_ref = b_vec.copy()
        pairs = [(i, i + n // 2) for i in range(n // 2)]

        worst, rotated = sweep_pairs(b_vec, None, pairs,
                                     precision=1e-12, zero_sq=0.0)

        ref_worst = 0.0
        ref_rotated = 0
        for i, j in pairs:
            alpha = float(b_ref[:, i] @ b_ref[:, i])
            beta = float(b_ref[:, j] @ b_ref[:, j])
            gamma = float(b_ref[:, i] @ b_ref[:, j])
            ratio = pair_convergence_ratio(alpha, beta, gamma)
            ref_worst = max(ref_worst, ratio)
            if ratio >= 1e-12:
                rotation = compute_rotation(alpha, beta, gamma)
                b_ref[:, i], b_ref[:, j] = apply_rotation(
                    b_ref[:, i], b_ref[:, j], rotation
                )
                ref_rotated += 1

        assert rotated == ref_rotated
        assert worst == pytest.approx(ref_worst, rel=1e-12)
        np.testing.assert_allclose(b_vec, b_ref, atol=1e-12)

    def test_rejects_overlapping_pairs(self, rng):
        b = np.asfortranarray(rng.standard_normal((8, 8)))
        with pytest.raises(NumericalError):
            sweep_pairs(b, None, [(0, 1), (1, 2)], precision=1e-12,
                        zero_sq=0.0)


class TestAcceptance256:
    """The docs/performance.md acceptance numbers, pinned."""

    def test_parity_and_speedup_256(self):
        a = random_matrix(256, 256, seed=0)

        started = time.perf_counter()
        scalar = hestenes_svd(a, strategy="scalar")
        scalar_s = time.perf_counter() - started

        started = time.perf_counter()
        vectorized = hestenes_svd(a, strategy="vectorized")
        vectorized_s = time.perf_counter() - started

        np.testing.assert_allclose(
            scalar.singular_values, vectorized.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )
        assert scalar.sweeps == vectorized.sweeps
        # Measured ~3.2x on the dev container; 2x is the flake-proof
        # floor for shared CI runners (docs/performance.md records the
        # real figure, `repro bench --suite solver` re-measures it).
        assert scalar_s / vectorized_s >= 2.0

    @pytest.mark.skipif(not native_available(),
                        reason="Numba not installed")
    def test_native_parity_and_speedup_256(self):
        a = random_matrix(256, 256, seed=0)

        # Warm-up compiles the kernels outside the timed region.
        hestenes_svd(random_matrix(16, 16, seed=1), strategy="native")

        started = time.perf_counter()
        scalar = hestenes_svd(a, strategy="scalar")
        scalar_s = time.perf_counter() - started

        started = time.perf_counter()
        native = hestenes_svd(a, strategy="native")
        native_s = time.perf_counter() - started

        np.testing.assert_allclose(
            scalar.singular_values, native.singular_values,
            rtol=0.0, atol=1e-10 * scalar.singular_values[0],
        )
        assert scalar.sweeps == native.sweeps
        # The >= 10x headline is measured at 512x512 by the bench
        # suite; 4x at 256 is the flake-proof CI floor.
        assert scalar_s / native_s >= 4.0
