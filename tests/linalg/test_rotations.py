"""Unit tests for the Jacobi rotation math (Eqs. 3-5)."""


import numpy as np
import pytest

from repro.errors import NumericalError
from repro.linalg.rotations import (
    JacobiRotation,
    apply_rotation,
    compute_rotation,
    rotate_pair,
)


class TestComputeRotation:
    def test_identity_for_orthogonal_pair(self):
        rotation = compute_rotation(alpha=4.0, beta=9.0, gamma=0.0)
        assert rotation.identity
        assert rotation.c == 1.0
        assert rotation.s == 0.0

    def test_is_a_proper_rotation(self):
        rotation = compute_rotation(alpha=2.0, beta=5.0, gamma=1.5)
        assert rotation.c**2 + rotation.s**2 == pytest.approx(1.0)

    def test_angle_stays_below_45_degrees(self):
        # The smaller root of t^2 + 2*tau*t - 1 = 0 keeps |t| <= 1.
        for alpha, beta, gamma in [(1, 1, 0.5), (1, 100, 3), (50, 1, -2)]:
            rotation = compute_rotation(alpha, beta, gamma)
            t = rotation.s / rotation.c
            assert abs(t) <= 1.0 + 1e-12

    def test_sign_follows_gamma(self):
        plus = compute_rotation(1.0, 2.0, 0.7)
        minus = compute_rotation(1.0, 2.0, -0.7)
        assert plus.s == pytest.approx(-minus.s)
        assert plus.c == pytest.approx(minus.c)

    def test_rejects_non_finite(self):
        with pytest.raises(NumericalError):
            compute_rotation(float("nan"), 1.0, 0.5)
        with pytest.raises(NumericalError):
            compute_rotation(1.0, float("inf"), 0.5)

    def test_rejects_negative_norms(self):
        with pytest.raises(NumericalError):
            compute_rotation(-1.0, 1.0, 0.5)

    def test_matrix_form(self):
        rotation = compute_rotation(3.0, 1.0, 0.4)
        j = rotation.as_matrix()
        assert j.shape == (2, 2)
        assert j[0, 0] == pytest.approx(rotation.c)
        assert j[0, 1] == pytest.approx(rotation.s)
        assert j[1, 0] == pytest.approx(-rotation.s)
        assert np.allclose(j @ j.T, np.eye(2))


class TestApplyRotation:
    def test_annihilates_inner_product(self, rng):
        ai = rng.standard_normal(32)
        aj = rng.standard_normal(32)
        bi, bj, _ = rotate_pair(ai, aj)
        scale = np.linalg.norm(bi) * np.linalg.norm(bj)
        assert abs(bi @ bj) / scale < 1e-12

    def test_preserves_frobenius_norm(self, rng):
        ai = rng.standard_normal(16)
        aj = rng.standard_normal(16)
        bi, bj, _ = rotate_pair(ai, aj)
        before = ai @ ai + aj @ aj
        after = bi @ bi + bj @ bj
        assert after == pytest.approx(before)

    def test_identity_rotation_copies(self, rng):
        ai = rng.standard_normal(8)
        aj = rng.standard_normal(8)
        rotation = JacobiRotation(c=1.0, s=0.0, identity=True)
        bi, bj = apply_rotation(ai, aj, rotation)
        assert np.array_equal(bi, ai)
        assert np.array_equal(bj, aj)
        assert bi is not ai  # fresh arrays, inputs untouched

    def test_inputs_not_modified(self, rng):
        ai = rng.standard_normal(8)
        aj = rng.standard_normal(8)
        ai_copy, aj_copy = ai.copy(), aj.copy()
        rotate_pair(ai, aj)
        assert np.array_equal(ai, ai_copy)
        assert np.array_equal(aj, aj_copy)

    def test_equal_norm_columns(self):
        # tau = 0 exercises the sign(0) corner of Eq. 5.
        ai = np.array([1.0, 1.0])
        aj = np.array([1.0, -0.5])
        bi, bj, rotation = rotate_pair(ai, aj)
        assert not rotation.identity
        assert abs(bi @ bj) < 1e-12

    def test_nearly_parallel_columns(self, rng):
        ai = rng.standard_normal(16)
        aj = ai + 1e-9 * rng.standard_normal(16)
        bi, bj, _ = rotate_pair(ai, aj)
        assert abs(bi @ bj) <= 1e-9 * max(1.0, bi @ bi)

    def test_zero_column_is_identity(self, rng):
        ai = rng.standard_normal(8)
        aj = np.zeros(8)
        _, _, rotation = rotate_pair(ai, aj)
        assert rotation.identity
