"""Tests for the bidiagonal divide-and-conquer SVD (``method="dnc"``)."""

import numpy as np
import pytest

from repro.errors import DeadlineExceeded, NumericalError
from repro.linalg.dnc import (
    DEFAULT_LEAF_SIZE,
    DnCResult,
    _bidiagonalize,
    dnc_svd,
)
from repro.linalg.svd import svd


def _check_factorization(a, result, rtol=1e-10, factor_tol=1e-8):
    """Singular values to rtol vs LAPACK; factors reconstruct."""
    s_ref = np.linalg.svd(a, compute_uv=False)
    scale = s_ref[0] if s_ref[0] > 0 else 1.0
    assert np.max(np.abs(result.singular_values - s_ref)) <= rtol * scale
    r = min(a.shape)
    assert result.u.shape == (a.shape[0], r)
    assert result.v.shape == (a.shape[1], r)
    assert np.allclose(result.reconstruct(), a,
                       atol=factor_tol * max(scale, 1.0))


class TestDnCAccuracy:
    @pytest.mark.parametrize("shape", [
        (8, 8), (40, 40), (96, 96), (120, 60), (60, 120), (33, 17),
    ])
    def test_matches_lapack(self, rng, shape):
        a = rng.standard_normal(shape)
        _check_factorization(a, dnc_svd(a))

    def test_recursion_depth_two_and_beyond(self, rng):
        # > 4x the leaf size forces at least two merge levels — the
        # regime where the secular solver's pole conditioning matters.
        n = 5 * DEFAULT_LEAF_SIZE
        a = rng.standard_normal((n, n))
        result = dnc_svd(a)
        _check_factorization(a, result)
        assert result.merges >= 3

    def test_graded_spectrum(self, rng):
        # Geometric grading over ~12 decades: absolute, not relative,
        # accuracy is the attainable bar for the tiny tail.
        n = 48
        u, _ = np.linalg.qr(rng.standard_normal((n, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        s = 10.0 ** -np.linspace(0, 12, n)
        a = (u * s) @ v.T
        result = dnc_svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(result.singular_values - s_ref)) < 1e-10

    def test_rank_deficient(self, rng):
        a = rng.standard_normal((50, 6)) @ rng.standard_normal((6, 30))
        result = dnc_svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref,
                           atol=1e-9 * s_ref[0])
        assert np.allclose(result.reconstruct(), a, atol=1e-7)

    def test_orthogonal_factors(self, rng):
        a = rng.standard_normal((70, 70))
        result = dnc_svd(a)
        eye = np.eye(70)
        assert np.allclose(result.u.T @ result.u, eye, atol=1e-9)
        assert np.allclose(result.v.T @ result.v, eye, atol=1e-9)

    def test_deterministic(self, rng):
        a = rng.standard_normal((64, 64))
        first = dnc_svd(a)
        second = dnc_svd(a)
        assert np.array_equal(first.singular_values,
                              second.singular_values)
        assert np.array_equal(first.u, second.u)
        assert np.array_equal(first.v, second.v)


class TestDnCEdges:
    def test_single_column_and_row(self, rng):
        col = rng.standard_normal((9, 1))
        row = rng.standard_normal((1, 9))
        for a in (col, row):
            result = dnc_svd(a)
            assert np.allclose(result.singular_values,
                               [np.linalg.norm(a)])
            assert np.allclose(result.reconstruct(), a, atol=1e-12)

    def test_bidiagonalize_reconstructs(self, rng):
        a = rng.standard_normal((20, 12))
        u, d, e, v = _bidiagonalize(a)
        b = np.diag(d) + np.diag(e, k=1) if e.size else np.diag(d)
        assert np.allclose(u @ b @ v.T, a, atol=1e-12)

    def test_invalid_inputs(self):
        with pytest.raises(NumericalError):
            dnc_svd(np.zeros((0, 4)))
        with pytest.raises(NumericalError):
            dnc_svd(np.ones(5))
        with pytest.raises(NumericalError):
            dnc_svd(np.array([[1.0, np.nan], [0.0, 1.0]]))

    def test_not_degraded_on_clean_input(self, rng):
        result = dnc_svd(rng.standard_normal((40, 40)))
        assert result.degraded is False
        assert result.converged is True

    def test_expired_deadline_raises(self, rng):
        a = rng.standard_normal((80, 80))
        with pytest.raises(DeadlineExceeded):
            dnc_svd(a, deadline=1e-12)


class TestDnCDispatch:
    def test_svd_method_dnc(self, rng):
        a = rng.standard_normal((50, 30))
        via_svd = svd(a, method="dnc")
        direct = dnc_svd(a)
        assert np.array_equal(via_svd.singular_values,
                              direct.singular_values)
        assert via_svd.method == "dnc"
        _check_factorization(a, via_svd)

    def test_no_padding_on_odd_columns(self, rng):
        # The Jacobi paths zero-pad odd column counts; dnc must not —
        # its V must keep the caller's exact width.
        a = rng.standard_normal((21, 13))
        result = svd(a, method="dnc")
        assert result.v.shape == (13, 13)
        _check_factorization(a, result)

    def test_result_is_dnc_type_directly(self, rng):
        assert isinstance(dnc_svd(rng.standard_normal((10, 10))),
                          DnCResult)
