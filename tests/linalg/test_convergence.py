"""Unit tests for the convergence criterion (Eq. 6)."""

import numpy as np
import pytest

from repro.linalg.convergence import (
    is_converged,
    off_diagonal_ratio,
    pair_convergence_ratio,
)


class TestPairConvergenceRatio:
    def test_orthogonal_pair_is_zero(self):
        assert pair_convergence_ratio(4.0, 9.0, 0.0) == 0.0

    def test_parallel_pair_is_one(self):
        # a_i = a_j: gamma = alpha = beta.
        assert pair_convergence_ratio(2.0, 2.0, 2.0) == pytest.approx(1.0)

    def test_zero_norm_column_counts_as_converged(self):
        assert pair_convergence_ratio(0.0, 5.0, 0.0) == 0.0
        assert pair_convergence_ratio(5.0, 0.0, 0.0) == 0.0

    def test_sign_insensitive(self):
        assert pair_convergence_ratio(1.0, 4.0, -1.0) == pair_convergence_ratio(
            1.0, 4.0, 1.0
        )

    def test_matches_cosine_definition(self, rng):
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        ratio = pair_convergence_ratio(
            float(a @ a), float(b @ b), float(a @ b)
        )
        cosine = abs(a @ b) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert ratio == pytest.approx(cosine)


class TestOffDiagonalRatio:
    def test_orthogonal_matrix_is_zero(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((8, 4)))
        assert off_diagonal_ratio(q) < 1e-14

    def test_duplicate_columns_hit_one(self):
        a = np.ones((6, 2))
        assert off_diagonal_ratio(a) == pytest.approx(1.0)

    def test_zero_columns_ignored(self):
        a = np.zeros((5, 3))
        a[:, 0] = [1, 0, 0, 0, 0]
        assert off_diagonal_ratio(a) == 0.0

    def test_is_the_max_over_pairs(self, rng):
        a = rng.standard_normal((10, 4))
        worst = 0.0
        for i in range(4):
            for j in range(i + 1, 4):
                worst = max(
                    worst,
                    pair_convergence_ratio(
                        float(a[:, i] @ a[:, i]),
                        float(a[:, j] @ a[:, j]),
                        float(a[:, i] @ a[:, j]),
                    ),
                )
        assert off_diagonal_ratio(a) == pytest.approx(worst)


class TestIsConverged:
    def test_threshold_behaviour(self, rng):
        a = rng.standard_normal((12, 6))
        ratio = off_diagonal_ratio(a)
        assert is_converged(a, precision=ratio * 2)
        assert not is_converged(a, precision=ratio / 2)
