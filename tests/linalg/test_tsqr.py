"""Tests for the tall-skinny TSQR SVD (``method="tsqr"``)."""

import numpy as np
import pytest

from repro.errors import DeadlineExceeded, NumericalError
from repro.linalg.svd import svd
from repro.linalg.tsqr import TSQRResult, panel_r, tall_skinny_svd
from repro.workloads.tallskinny import tall_skinny_matrix


def _check(a, result, rtol=1e-10):
    s_ref = np.linalg.svd(a, compute_uv=False)
    scale = s_ref[0] if s_ref[0] > 0 else 1.0
    assert np.max(np.abs(result.singular_values - s_ref)) <= rtol * scale
    assert np.allclose(result.reconstruct(), a, atol=1e-8 * max(scale, 1.0))


class TestTSQRAccuracy:
    @pytest.mark.parametrize("shape", [
        (600, 20), (4096, 16), (100, 100), (24, 500), (33, 17),
    ])
    def test_matches_lapack(self, rng, shape):
        a = rng.standard_normal(shape)
        _check(a, tall_skinny_svd(a))

    def test_graded_columns(self):
        a = tall_skinny_matrix(2000, 24, decay=0.7, seed=3)
        _check(a, tall_skinny_svd(a))

    def test_orthogonal_factors(self, rng):
        a = rng.standard_normal((900, 18))
        result = tall_skinny_svd(a)
        eye = np.eye(18)
        # U comes from the A V / s recovery, so its orthogonality is
        # set by the core's convergence threshold (1e-8), not eps.
        assert np.allclose(result.u.T @ result.u, eye, atol=1e-7)
        assert np.allclose(result.v.T @ result.v, eye, atol=1e-10)

    def test_tree_shape(self, rng):
        a = rng.standard_normal((600, 20))
        result = tall_skinny_svd(a, panel_rows=80)
        assert result.panels == 8
        assert result.tree_levels == 3

    def test_single_panel(self, rng):
        a = rng.standard_normal((50, 10))
        result = tall_skinny_svd(a)
        assert result.panels == 1
        assert result.tree_levels == 0
        _check(a, result)


class TestTSQRParallel:
    def test_bit_identical_across_job_counts(self, rng):
        # Panel Rs are computed independently, so the process-pool
        # fan-out must not change a single bit of the result.
        a = rng.standard_normal((600, 20))
        serial = tall_skinny_svd(a, panel_rows=80, jobs=1)
        parallel = tall_skinny_svd(a, panel_rows=80, jobs=3)
        assert np.array_equal(serial.singular_values,
                              parallel.singular_values)
        assert np.array_equal(serial.u, parallel.u)
        assert np.array_equal(serial.v, parallel.v)

    def test_panel_r_is_module_level(self):
        # Process pools pickle by qualified name.
        assert panel_r.__module__ == "repro.linalg.tsqr"
        r = panel_r(np.eye(4))
        assert r.shape == (4, 4)


class TestTSQREdges:
    def test_invalid_inputs(self):
        with pytest.raises(NumericalError):
            tall_skinny_svd(np.zeros((0, 4)))
        with pytest.raises(NumericalError):
            tall_skinny_svd(np.ones(5))
        with pytest.raises(NumericalError):
            tall_skinny_svd(np.eye(4), panel_rows=0)

    def test_rank_deficient_zero_columns(self, rng):
        # Singular values below the cutoff must produce exactly-zero
        # U columns, not amplified noise.
        a = rng.standard_normal((300, 4)) @ rng.standard_normal((4, 12))
        result = tall_skinny_svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref,
                           atol=1e-9 * s_ref[0])
        assert np.all(result.u[:, 6:] == 0.0)

    def test_expired_deadline_raises(self, rng):
        a = rng.standard_normal((600, 20))
        with pytest.raises(DeadlineExceeded):
            tall_skinny_svd(a, panel_rows=40, deadline=1e-12)

    def test_result_type(self, rng):
        assert isinstance(tall_skinny_svd(rng.standard_normal((64, 8))),
                          TSQRResult)


class TestTSQRDispatch:
    def test_svd_method_tsqr(self, rng):
        a = rng.standard_normal((400, 18))
        via_svd = svd(a, method="tsqr")
        direct = tall_skinny_svd(a)
        assert np.allclose(via_svd.singular_values,
                           direct.singular_values, rtol=1e-12)
        assert via_svd.method == "tsqr"
        _check(a, via_svd)

    def test_odd_core_width_picks_valid_block_width(self, rng):
        # n=18 pads to 18 inside the block core; the auto-picked width
        # must divide it (the naive min(8, n//2)=8 would not).
        a = rng.standard_normal((300, 18))
        _check(a, tall_skinny_svd(a))
        a = rng.standard_normal((300, 9))
        _check(a, tall_skinny_svd(a))
