"""Unit tests for complex-matrix SVD via the real embedding."""

import numpy as np
import pytest

from repro.linalg.svd import svd


def random_complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestComplexSVD:
    @pytest.mark.parametrize("shape", [(6, 6), (10, 4), (4, 10), (7, 5)])
    def test_reconstruction(self, rng, shape):
        z = random_complex(rng, shape)
        result = svd(z, precision=1e-10)
        err = np.linalg.norm(z - result.reconstruct()) / np.linalg.norm(z)
        assert err < 1e-8

    def test_spectrum_matches_lapack(self, rng):
        z = random_complex(rng, (8, 6))
        result = svd(z, precision=1e-10)
        s_ref = np.linalg.svd(z, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)

    def test_factor_count_is_min_dim(self, rng):
        z = random_complex(rng, (9, 5))
        result = svd(z, precision=1e-10)
        assert result.u.shape == (9, 5)
        assert result.v.shape == (5, 5)
        assert len(result.singular_values) == 5

    def test_unitary_factors(self, rng):
        z = random_complex(rng, (8, 8))
        result = svd(z, precision=1e-10)
        eye = np.eye(8)
        assert np.allclose(np.conj(result.u).T @ result.u, eye, atol=1e-8)
        assert np.allclose(np.conj(result.v).T @ result.v, eye, atol=1e-8)

    def test_factors_are_complex(self, rng):
        z = random_complex(rng, (4, 4))
        result = svd(z)
        assert np.iscomplexobj(result.u)
        assert np.iscomplexobj(result.v)
        assert not np.iscomplexobj(result.singular_values)

    def test_real_valued_complex_matrix(self, rng):
        a = rng.standard_normal((6, 4))
        result = svd(a.astype(complex), precision=1e-10)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)

    def test_block_method_works_too(self, rng):
        z = random_complex(rng, (12, 8))
        result = svd(z, method="block", block_width=4, precision=1e-9)
        s_ref = np.linalg.svd(z, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_mimo_channel_roundtrip(self, rng):
        # The use case: factor a complex channel directly.
        h = random_complex(rng, (8, 8)) / np.sqrt(2)
        result = svd(h, precision=1e-10)
        # Beamformed channel U^H H V is diagonal.
        effective = np.conj(result.u).T @ h @ result.v
        off = effective - np.diag(np.diag(effective))
        assert np.max(np.abs(off)) < 1e-8 * result.singular_values[0]
