"""Unit tests for the one-sided Hestenes-Jacobi driver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, NumericalError
from repro.linalg.convergence import off_diagonal_ratio
from repro.linalg.hestenes import hestenes_svd, normalize_columns
from repro.linalg.orderings import RingOrdering, RoundRobinOrdering


class TestHestenesSVD:
    def test_matches_lapack_spectrum(self, rng):
        a = rng.standard_normal((20, 12))
        result = hestenes_svd(a, precision=1e-10)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)

    def test_reconstruction(self, rng):
        a = rng.standard_normal((16, 8))
        result = hestenes_svd(a, precision=1e-10)
        assert np.allclose(result.reconstruct(), a, atol=1e-10)

    def test_factor_orthogonality(self, rng):
        a = rng.standard_normal((24, 10))
        result = hestenes_svd(a, precision=1e-10)
        assert np.allclose(result.u.T @ result.u, np.eye(10), atol=1e-8)
        assert np.allclose(result.v.T @ result.v, np.eye(10), atol=1e-10)

    def test_singular_values_descending(self, rng):
        a = rng.standard_normal((12, 8))
        result = hestenes_svd(a)
        s = result.singular_values
        assert np.all(s[:-1] >= s[1:])

    def test_convergence_flag_and_history(self, rng):
        a = rng.standard_normal((10, 6))
        result = hestenes_svd(a, precision=1e-8)
        assert result.converged
        assert len(result.sweep_residuals) == result.sweeps
        assert result.sweep_residuals[-1] < 1e-8

    def test_residuals_eventually_tiny(self, rng):
        a = rng.standard_normal((16, 8))
        result = hestenes_svd(a, precision=1e-12)
        # Quadratic convergence: the final sweep residual is far below
        # the first.
        assert result.sweep_residuals[-1] < result.sweep_residuals[0] * 1e-6

    def test_fixed_sweeps_mode(self, rng):
        a = rng.standard_normal((10, 6))
        result = hestenes_svd(a, fixed_sweeps=2)
        assert result.sweeps == 2
        # Fixed mode never raises, even unconverged.
        assert isinstance(result.converged, bool)

    def test_fixed_six_sweeps_is_accurate(self, rng):
        # The paper's benchmark mode: 6 iterations suffice for small n.
        a = rng.standard_normal((16, 8))
        result = hestenes_svd(a, fixed_sweeps=6)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_ordering_choice_does_not_change_result(self, rng):
        a = rng.standard_normal((12, 8))
        s1 = hestenes_svd(a, ordering_cls=RingOrdering).singular_values
        s2 = hestenes_svd(a, ordering_cls=RoundRobinOrdering).singular_values
        assert np.allclose(s1, s2, rtol=1e-8)

    def test_already_diagonal_input_converges_immediately(self):
        a = np.vstack([np.diag([3.0, 2.0, 1.0, 0.5]), np.zeros((4, 4))])
        result = hestenes_svd(a)
        assert result.sweeps == 1
        assert result.rotations == 0
        assert np.allclose(result.singular_values, [3, 2, 1, 0.5])

    def test_rank_deficient_input(self, rng):
        col = rng.standard_normal((10, 1))
        a = np.hstack([col, col, rng.standard_normal((10, 2))])
        result = hestenes_svd(a, precision=1e-10)
        assert result.singular_values[-1] == pytest.approx(0.0, abs=1e-8)
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_orthogonalizes_b(self, rng):
        a = rng.standard_normal((14, 6))
        result = hestenes_svd(a, precision=1e-9)
        b = result.u * result.singular_values
        assert off_diagonal_ratio(b) < 1e-8


class TestHestenesErrors:
    def test_rejects_wide_matrix(self, rng):
        with pytest.raises(NumericalError):
            hestenes_svd(rng.standard_normal((4, 8)))

    def test_rejects_odd_columns(self, rng):
        with pytest.raises(NumericalError):
            hestenes_svd(rng.standard_normal((8, 5)))

    def test_rejects_non_2d(self):
        with pytest.raises(NumericalError):
            hestenes_svd(np.ones(4))

    def test_rejects_non_finite(self, rng):
        a = rng.standard_normal((6, 4))
        a[0, 0] = np.nan
        with pytest.raises(NumericalError):
            hestenes_svd(a)

    def test_raises_on_sweep_exhaustion(self, rng):
        a = rng.standard_normal((30, 16))
        with pytest.raises(ConvergenceError) as exc:
            hestenes_svd(a, precision=1e-14, max_sweeps=1)
        assert exc.value.iterations == 1
        assert exc.value.residual > 0


class TestNormalizeColumns:
    def test_eq7_semantics(self, rng):
        a = rng.standard_normal((10, 4))
        b = hestenes_svd(a, precision=1e-10)
        # Re-derive: sigma is the column norm of B = U * S.
        bmat = b.u * b.singular_values
        u, s, _ = normalize_columns(bmat, np.eye(4))
        assert np.allclose(s, b.singular_values)
        assert np.allclose(np.linalg.norm(u, axis=0), 1.0)

    def test_zero_columns_give_zero_u(self):
        b = np.zeros((5, 2))
        b[:, 0] = [2, 0, 0, 0, 0]
        u, s, _ = normalize_columns(b, np.eye(2))
        assert s[0] == pytest.approx(2.0)
        assert s[1] == 0.0
        assert np.allclose(u[:, 1], 0.0)
