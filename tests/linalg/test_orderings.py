"""Unit tests for the parallel Jacobi orderings."""

import pytest

from repro.errors import ConfigurationError
from repro.linalg.orderings import (
    RingOrdering,
    RoundRobinOrdering,
    ShiftingRingOrdering,
    sweep_rounds,
    validate_ordering,
)

ALL_ORDERINGS = [RingOrdering, RoundRobinOrdering, ShiftingRingOrdering]


class TestSweepRounds:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 16, 32])
    def test_covers_all_pairs_exactly_once(self, n):
        validate_ordering(sweep_rounds(n), n)

    def test_round_and_pair_counts(self):
        rounds = sweep_rounds(8)
        assert len(rounds) == 7
        assert all(len(r) == 4 for r in rounds)

    @pytest.mark.parametrize("n", [0, 1, 3, 5, -2])
    def test_rejects_bad_column_counts(self, n):
        with pytest.raises(ConfigurationError):
            sweep_rounds(n)


class TestOrderingClasses:
    @pytest.mark.parametrize("cls", ALL_ORDERINGS)
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 12, 20])
    def test_valid_parallel_schedule(self, cls, n):
        validate_ordering(cls(n).rounds(), n)

    @pytest.mark.parametrize("cls", ALL_ORDERINGS)
    def test_dimensions(self, cls):
        ordering = cls(12)
        assert ordering.n_rounds == 11
        assert ordering.pairs_per_round == 6

    def test_ring_and_shifting_ring_share_pair_schedule(self):
        ring = RingOrdering(10)
        shifting = ShiftingRingOrdering(10)
        assert ring.rounds() == shifting.rounds()

    def test_round_robin_differs_from_ring(self):
        # Different published schedules; both valid.
        assert RoundRobinOrdering(8).rounds() != RingOrdering(8).rounds()

    def test_iteration_protocol(self):
        ordering = RingOrdering(6)
        assert list(ordering) == ordering.rounds()

    def test_all_pairs_flat_list(self):
        ordering = RingOrdering(6)
        assert len(ordering.all_pairs()) == 15

    def test_rounds_returns_copies(self):
        ordering = RingOrdering(4)
        rounds = ordering.rounds()
        rounds[0][0] = (99, 100)
        assert ordering.rounds()[0][0] != (99, 100)


class TestSlotMapping:
    def test_ring_has_no_shift(self):
        ordering = RingOrdering(8)
        for r in range(ordering.n_rounds):
            assert ordering.slot_shift(r) == 0
            for p in range(ordering.pairs_per_round):
                assert ordering.slot_of(r, p) == p

    def test_shifting_ring_shift_is_floor_halved_row(self):
        ordering = ShiftingRingOrdering(12)  # k = 6, 11 rounds
        expected = [r // 2 for r in range(11)]
        assert [ordering.slot_shift(r) for r in range(11)] == expected

    def test_shifting_ring_slots_rotate_cyclically(self):
        ordering = ShiftingRingOrdering(8)  # k = 4
        # Round 2 has shift 1: pair 3 wraps to slot 0.
        assert ordering.slot_of(2, 3) == 0
        assert ordering.slot_of(2, 0) == 1

    def test_slot_of_is_a_permutation_each_round(self):
        ordering = ShiftingRingOrdering(10)
        k = ordering.pairs_per_round
        for r in range(ordering.n_rounds):
            slots = {ordering.slot_of(r, p) for p in range(k)}
            assert slots == set(range(k))

    def test_out_of_range_rounds_and_pairs(self):
        ordering = ShiftingRingOrdering(6)
        with pytest.raises(ConfigurationError):
            ordering.slot_shift(5)
        with pytest.raises(ConfigurationError):
            ordering.slot_of(0, 3)
        with pytest.raises(ConfigurationError):
            ordering.slot_of(-1, 0)


class TestValidateOrdering:
    def test_detects_missing_round(self):
        rounds = sweep_rounds(6)[:-1]
        with pytest.raises(ConfigurationError):
            validate_ordering(rounds, 6)

    def test_detects_duplicate_pair(self):
        rounds = sweep_rounds(6)
        rounds[1] = rounds[0]
        with pytest.raises(ConfigurationError):
            validate_ordering(rounds, 6)

    def test_detects_column_used_twice_in_round(self):
        rounds = sweep_rounds(4)
        rounds[0] = [(0, 1), (0, 2)]
        with pytest.raises(ConfigurationError):
            validate_ordering(rounds, 4)
