"""Tests for the randomized truncated SVD."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.linalg.truncated import truncated_svd
from repro.workloads.matrices import low_rank_matrix


class TestTruncatedSVD:
    def test_exact_on_low_rank_input(self, rng):
        a = low_rank_matrix(60, 40, rank=5, seed=1)
        result = truncated_svd(a, rank=5, seed=0)
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_top_singular_values_accurate(self, rng):
        # Gaussian matrices have a flat spectrum — the hard case for
        # randomized sketching; 1% agreement on the top-10 is the
        # realistic bar (decaying spectra are far better, see the
        # low-rank tests).
        a = rng.standard_normal((80, 50))
        result = truncated_svd(a, rank=10, seed=0, power_iterations=3)
        s_ref = np.linalg.svd(a, compute_uv=False)[:10]
        assert np.allclose(result.singular_values, s_ref, rtol=1e-2)
        assert np.all(result.singular_values <= s_ref * (1 + 1e-12))

    def test_factor_shapes(self, rng):
        a = rng.standard_normal((30, 20))
        result = truncated_svd(a, rank=4, seed=0)
        assert result.u.shape == (30, 4)
        assert result.singular_values.shape == (4,)
        assert result.v.shape == (20, 4)

    def test_orthonormal_factors(self, rng):
        a = rng.standard_normal((40, 25))
        result = truncated_svd(a, rank=6, seed=0)
        eye = np.eye(6)
        assert np.allclose(result.u.T @ result.u, eye, atol=1e-10)
        assert np.allclose(result.v.T @ result.v, eye, atol=1e-8)

    def test_near_optimal_approximation_error(self, rng):
        # Randomized truncation must land close to the Eckart-Young
        # optimum for the same rank.
        a = rng.standard_normal((60, 40))
        rank = 8
        result = truncated_svd(a, rank=rank, seed=0, power_iterations=3)
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        optimal = np.linalg.norm(a - (u[:, :rank] * s[:rank]) @ vt[:rank])
        achieved = np.linalg.norm(a - result.reconstruct())
        assert achieved <= 1.05 * optimal

    def test_power_iterations_help_noisy_spectra(self, rng):
        a = low_rank_matrix(80, 60, rank=6, noise=0.4, seed=2)
        s_ref = np.linalg.svd(a, compute_uv=False)[:6]

        def error(q):
            result = truncated_svd(a, rank=6, seed=3, power_iterations=q)
            return np.max(np.abs(result.singular_values - s_ref))

        assert error(3) <= error(0) + 1e-12

    def test_wide_matrix(self, rng):
        a = rng.standard_normal((20, 50))
        result = truncated_svd(a, rank=5, seed=0)
        s_ref = np.linalg.svd(a, compute_uv=False)[:5]
        assert np.allclose(result.singular_values, s_ref, rtol=0.05)

    def test_full_rank_request(self, rng):
        a = rng.standard_normal((12, 8))
        result = truncated_svd(a, rank=8, seed=0)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_invalid_rank(self, rng):
        a = rng.standard_normal((10, 6))
        with pytest.raises(ConfigurationError):
            truncated_svd(a, rank=0)
        with pytest.raises(ConfigurationError):
            truncated_svd(a, rank=7)

    def test_invalid_options(self, rng):
        a = rng.standard_normal((10, 6))
        with pytest.raises(ConfigurationError):
            truncated_svd(a, rank=2, oversample=-1)

    def test_rank_beyond_min_dim_raises(self, rng):
        # Both orientations: the bound is min(m, n), not either axis.
        tall = rng.standard_normal((20, 6))
        wide = rng.standard_normal((6, 20))
        for a in (tall, wide):
            with pytest.raises(ConfigurationError, match="rank"):
                truncated_svd(a, rank=7)

    def test_zero_oversample(self, rng):
        # oversample=0 sketches with exactly `rank` columns — legal,
        # just less accurate; the factors must still be well-formed.
        a = low_rank_matrix(50, 30, rank=4, seed=2)
        result = truncated_svd(a, rank=4, oversample=0, seed=0)
        assert result.singular_values.shape == (4,)
        assert np.all(np.diff(result.singular_values) <= 0)
        assert np.allclose(result.u.T @ result.u, np.eye(4), atol=1e-8)
        # Exactly low-rank input: even the bare sketch captures it.
        assert np.allclose(result.reconstruct(), a, atol=1e-6)

    def test_power_iterations_accuracy_ordering(self, rng):
        # On a flat (noisy) spectrum, q=2 must not be less accurate
        # than q=0 on the top singular value — the HMT sharpening
        # argument, checked across several seeds to avoid flukes.
        a = rng.standard_normal((120, 80))
        s_top = np.linalg.svd(a, compute_uv=False)[0]
        err = {q: [] for q in (0, 2)}
        for seed in range(5):
            for q in (0, 2):
                result = truncated_svd(a, rank=8, power_iterations=q,
                                       seed=seed)
                err[q].append(abs(result.singular_values[0] - s_top))
        assert np.mean(err[2]) <= np.mean(err[0]) + 1e-12
        # q=2 is individually tight; q=0 on a flat spectrum is not.
        assert max(err[2]) < 0.05 * s_top
