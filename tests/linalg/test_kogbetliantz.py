"""Tests for the two-sided (Kogbetliantz) Jacobi SVD cross-check."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, NumericalError
from repro.linalg.hestenes import hestenes_svd
from repro.linalg.kogbetliantz import kogbetliantz_svd


class TestKogbetliantz:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_matches_lapack(self, rng, n):
        a = rng.standard_normal((n, n))
        result = kogbetliantz_svd(a, precision=1e-12)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-10)
        assert result.converged

    def test_full_factorization(self, rng):
        a = rng.standard_normal((12, 12))
        result = kogbetliantz_svd(a, precision=1e-12)
        assert np.allclose(result.reconstruct(), a, atol=1e-9)
        eye = np.eye(12)
        assert np.allclose(result.u.T @ result.u, eye, atol=1e-12)
        assert np.allclose(result.v.T @ result.v, eye, atol=1e-12)

    def test_cross_validates_one_sided_method(self, rng):
        # Two algorithmically independent Jacobi variants must agree.
        a = rng.standard_normal((16, 16))
        two_sided = kogbetliantz_svd(a, precision=1e-12)
        one_sided = hestenes_svd(a, precision=1e-12)
        assert np.allclose(
            two_sided.singular_values,
            one_sided.singular_values,
            rtol=1e-9,
        )

    def test_singular_values_non_negative_descending(self, rng):
        a = rng.standard_normal((10, 10))
        result = kogbetliantz_svd(a)
        s = result.singular_values
        assert np.all(s >= 0)
        assert np.all(s[:-1] >= s[1:])

    def test_off_diagonal_history_decreases(self, rng):
        a = rng.standard_normal((16, 16))
        result = kogbetliantz_svd(a, precision=1e-12)
        assert result.off_history[-1] < result.off_history[0]

    def test_diagonal_input_immediate(self):
        a = np.diag([4.0, 3.0, 2.0, 1.0])
        result = kogbetliantz_svd(a)
        assert result.sweeps <= 1
        assert np.allclose(result.singular_values, [4, 3, 2, 1])

    def test_negative_diagonal_fixed_up(self):
        a = np.diag([-5.0, 2.0])
        result = kogbetliantz_svd(a)
        assert np.allclose(result.singular_values, [5.0, 2.0])
        assert np.allclose(result.reconstruct(), a, atol=1e-12)

    def test_zero_matrix(self):
        result = kogbetliantz_svd(np.zeros((4, 4)))
        assert np.allclose(result.singular_values, 0.0)
        assert result.converged

    def test_rejects_non_square(self, rng):
        with pytest.raises(NumericalError):
            kogbetliantz_svd(rng.standard_normal((4, 6)))

    def test_rejects_non_finite(self):
        a = np.eye(4)
        a[0, 0] = np.inf
        with pytest.raises(NumericalError):
            kogbetliantz_svd(a)

    def test_budget_exhaustion(self, rng):
        a = rng.standard_normal((16, 16))
        with pytest.raises(ConvergenceError):
            kogbetliantz_svd(a, precision=1e-14, max_sweeps=1)
