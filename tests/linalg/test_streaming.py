"""Tests for the incremental streaming SVD (``method="streaming"``)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NumericalError
from repro.linalg.streaming import (
    StreamingResult,
    StreamingSVD,
    streaming_svd,
)
from repro.linalg.svd import svd
from repro.workloads.streaming import rating_stream


class TestOneShotStreaming:
    @pytest.mark.parametrize("shape", [
        (64, 16), (500, 24), (24, 500), (33, 17), (100, 100),
    ])
    def test_full_rank_matches_lapack(self, rng, shape):
        # At full rank nothing is ever truncated, so the stream of
        # folds must land on the batch answer to the solver contract.
        a = rng.standard_normal(shape)
        result = streaming_svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(result.singular_values - s_ref)) \
            <= 1e-10 * s_ref[0]
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_multiple_folds_happen(self, rng):
        a = rng.standard_normal((200, 16))
        result = streaming_svd(a, chunk_rows=32)
        assert result.updates == 7  # ceil(200 / 32)
        assert result.converged is True
        assert result.degraded is False

    def test_truncated_rank(self, rng):
        a = rng.standard_normal((120, 40))
        result = streaming_svd(a, rank=10, chunk_rows=30)
        assert result.singular_values.shape == (10,)
        assert result.u.shape == (120, 10)
        assert result.v.shape == (40, 10)

    def test_invalid_inputs(self, rng):
        with pytest.raises(NumericalError):
            streaming_svd(np.zeros((0, 4)))
        with pytest.raises(ConfigurationError):
            streaming_svd(rng.standard_normal((8, 4)), rank=0)
        with pytest.raises(ConfigurationError):
            streaming_svd(rng.standard_normal((8, 4)), chunk_rows=0)

    def test_result_type(self, rng):
        assert isinstance(streaming_svd(rng.standard_normal((16, 4))),
                          StreamingResult)


class TestStreamingUpdates:
    def test_exact_on_low_rank_stream(self, rng):
        # Rank-k data tracked at rank k: every fold is exact.
        k = 5
        left = rng.standard_normal((150, k))
        right = rng.standard_normal((k, 40))
        a = left @ right
        stream = StreamingSVD(rank=k)
        for start in range(0, 150, 25):
            stream.update(a[start:start + 25])
        s_ref = np.linalg.svd(a, compute_uv=False)[:k]
        assert np.max(np.abs(stream.singular_values - s_ref)) \
            <= 1e-10 * s_ref[0]
        assert np.allclose(stream.reconstruct(), a, atol=1e-8)
        assert stream.error_bound() <= 1e-8

    def test_error_bound_holds_and_is_monotone(self, rng):
        # The documented contract: the bound dominates the true error
        # at every rank, and both shrink as the rank grows.
        a = rng.standard_normal((160, 40))
        bounds, errors = [], []
        for rank in (4, 8, 16, 32, 40):
            stream = StreamingSVD(rank=rank)
            for start in range(0, 160, 20):
                stream.update(a[start:start + 20])
            true_err = np.linalg.norm(a - stream.reconstruct())
            assert true_err <= stream.error_bound() + 1e-9
            bounds.append(stream.error_bound())
            errors.append(true_err)
        assert all(hi >= lo - 1e-9
                   for hi, lo in zip(bounds, bounds[1:]))
        assert all(hi >= lo - 1e-9
                   for hi, lo in zip(errors, errors[1:]))
        assert bounds[-1] <= 1e-8  # full rank truncates nothing

    def test_from_matrix_warm_start(self, rng):
        a = rng.standard_normal((80, 24))
        stream = StreamingSVD.from_matrix(a, rank=24, seed=0)
        b = rng.standard_normal((40, 24))
        stream.update(b)
        full = np.vstack([a, b])
        s_ref = np.linalg.svd(full, compute_uv=False)
        assert np.allclose(stream.singular_values, s_ref, rtol=1e-6)
        assert stream.rows == 120

    def test_rating_stream_tracking(self, rng):
        # The workload generator and the tracker, end to end: rank-r
        # structure plus noise tracked at the structural rank.
        stream_data = rating_stream(120, 30, latent_rank=6,
                                    chunk_rows=24, seed=7)
        tracker = StreamingSVD(rank=6)
        tracker.update(stream_data.initial)
        for block in stream_data.updates:
            tracker.update(block)
        assert tracker.rows == 120
        assert tracker.updates == 5
        full = stream_data.full_matrix()
        s_ref = np.linalg.svd(full, compute_uv=False)
        # Rank-6 tracking of a rank-6-plus-noise matrix: the retained
        # spectrum tracks the top of the batch spectrum to a few
        # percent, and the bound covers the deviation.
        assert np.allclose(tracker.singular_values, s_ref[:6], rtol=0.1)
        true_err = np.linalg.norm(full - tracker.reconstruct())
        assert true_err <= tracker.error_bound() + 1e-9

    def test_update_validation(self, rng):
        stream = StreamingSVD(rank=4)
        with pytest.raises(NumericalError):
            stream.update(np.ones(3))
        with pytest.raises(NumericalError):
            stream.update(np.zeros((0, 4)))
        stream.update(rng.standard_normal((6, 8)))
        with pytest.raises(NumericalError):
            stream.update(rng.standard_normal((6, 9)))
        with pytest.raises(NumericalError):
            stream.update(np.full((2, 8), np.nan))

    def test_empty_tracker_raises(self):
        stream = StreamingSVD(rank=4)
        with pytest.raises(NumericalError):
            _ = stream.singular_values
        with pytest.raises(ConfigurationError):
            StreamingSVD(rank=0)


class TestStreamingDispatch:
    def test_svd_method_streaming(self, rng):
        a = rng.standard_normal((96, 20))
        via_svd = svd(a, method="streaming")
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(via_svd.singular_values - s_ref)) \
            <= 1e-10 * s_ref[0]
        assert via_svd.method == "streaming"

    def test_odd_columns_no_padding(self, rng):
        a = rng.standard_normal((40, 11))
        result = svd(a, method="streaming")
        assert result.v.shape == (11, 11)
        assert np.allclose(result.reconstruct(), a, atol=1e-8)
