"""Unit tests for the golden-model validation helpers."""

import numpy as np
import pytest

from repro.linalg.reference import (
    ValidationReport,
    orthogonality_error,
    reconstruction_error,
    singular_value_error,
    validate_svd,
)


class TestReconstructionError:
    def test_exact_svd_is_zero(self, rng):
        a = rng.standard_normal((8, 5))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        assert reconstruction_error(a, u, s, vt.T) < 1e-14

    def test_corrupted_svd_is_nonzero(self, rng):
        a = rng.standard_normal((8, 5))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        assert reconstruction_error(a, u, s * 1.1, vt.T) > 0.01

    def test_zero_matrix_uses_absolute_error(self):
        a = np.zeros((4, 3))
        u = np.zeros((4, 3))
        s = np.zeros(3)
        v = np.zeros((3, 3))
        assert reconstruction_error(a, u, s, v) == 0.0


class TestOrthogonalityError:
    def test_orthonormal_is_zero(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        assert orthogonality_error(q) < 1e-14

    def test_scaled_columns_detected(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        q[:, 0] *= 2
        assert orthogonality_error(q) > 1.0

    def test_zero_columns_excluded(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        padded = np.hstack([q, np.zeros((10, 1))])
        assert orthogonality_error(padded) < 1e-14

    def test_all_zero_matrix(self):
        assert orthogonality_error(np.zeros((5, 3))) == 0.0


class TestSingularValueError:
    def test_exact_spectrum(self, rng):
        a = rng.standard_normal((9, 6))
        s = np.linalg.svd(a, compute_uv=False)
        assert singular_value_error(a, s) < 1e-14

    def test_order_insensitive(self, rng):
        a = rng.standard_normal((9, 6))
        s = np.linalg.svd(a, compute_uv=False)
        assert singular_value_error(a, s[::-1]) < 1e-14

    def test_perturbed_spectrum(self, rng):
        a = rng.standard_normal((9, 6))
        s = np.linalg.svd(a, compute_uv=False)
        assert singular_value_error(a, s * 1.05) == pytest.approx(
            0.05, rel=1e-6
        )


class TestValidateSVD:
    def test_report_within(self, rng):
        a = rng.standard_normal((8, 4))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        report = validate_svd(a, u, s, vt.T)
        assert isinstance(report, ValidationReport)
        assert report.within(1e-10)
        assert not report.within(0.0)
