"""Unit tests for the sender (packetization) and receiver (reassembly)."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.pl.receiver import Receiver, reduce_convergence
from repro.pl.sender import PACKET_HEADER_BITS, Packet, Sender


def simple_route(slot, side):
    """Slot s of layer 0 lives at row 1, column s."""
    return (1, slot)


@pytest.fixture
def sender():
    return Sender(simple_route)


class TestSender:
    def test_one_packet_per_column(self, sender, rng):
        data = rng.standard_normal((8, 6))
        packets = sender.packetize(list(range(6)), data)
        assert len(packets) == 6
        assert sorted(p.column_index for p in packets) == list(range(6))

    def test_plio_split_by_block(self, sender, rng):
        # Left columns (first block) on PLIO 0, right columns on PLIO 1.
        data = rng.standard_normal((4, 8))
        packets = sender.packetize(list(range(8)), data)
        plio0 = {p.column_index for p in packets if p.plio == 0}
        plio1 = {p.column_index for p in packets if p.plio == 1}
        assert plio0 == {0, 1, 2, 3}
        assert plio1 == {4, 5, 6, 7}

    def test_headers_route_to_slots(self, sender, rng):
        data = rng.standard_normal((4, 8))
        packets = sender.packetize(list(range(8)), data)
        for p in packets:
            slot = p.column_index % 4
            assert p.header == (1, slot)

    def test_payload_integrity(self, sender, rng):
        data = rng.standard_normal((5, 4))
        cols = [10, 11, 20, 21]
        packets = sender.packetize(cols, data)
        by_col = {p.column_index: p.payload for p in packets}
        for position, col in enumerate(cols):
            assert np.array_equal(by_col[col], data[:, position])

    def test_packet_wire_size(self, sender, rng):
        data = rng.standard_normal((16, 2))
        packets = sender.packetize([0, 1], data)
        assert packets[0].bits == PACKET_HEADER_BITS + 16 * 32

    def test_stream_bits_accounting(self, sender, rng):
        data = rng.standard_normal((8, 4))
        packets = sender.packetize([0, 1, 2, 3], data)
        total = Sender.stream_bits(packets, 0) + Sender.stream_bits(packets, 1)
        assert total == sum(p.bits for p in packets)

    def test_rejects_odd_columns(self, sender, rng):
        with pytest.raises(RoutingError):
            sender.packetize([0, 1, 2], rng.standard_normal((4, 3)))

    def test_rejects_mismatched_data(self, sender, rng):
        with pytest.raises(RoutingError):
            sender.packetize([0, 1], rng.standard_normal((4, 4)))


class TestReceiver:
    def _packet(self, col, payload, plio=0):
        return Packet(header=(0, 0), column_index=col, payload=payload, plio=plio)

    def test_reassembles_in_expected_order(self, rng):
        cols = [3, 7, 1, 5]
        data = {c: rng.standard_normal(4) for c in cols}
        receiver = Receiver(cols)
        # Deliver out of order.
        for c in [5, 3, 1, 7]:
            receiver.accept(self._packet(c, data[c]))
        assert receiver.complete
        result = receiver.reassemble()
        for i, c in enumerate(cols):
            assert np.array_equal(result[:, i], data[c])

    def test_missing_columns_reported(self, rng):
        receiver = Receiver([0, 1])
        receiver.accept(self._packet(0, rng.standard_normal(3)))
        assert receiver.missing == [1]
        with pytest.raises(RoutingError):
            receiver.reassemble()

    def test_duplicate_rejected(self, rng):
        receiver = Receiver([0, 1])
        receiver.accept(self._packet(0, rng.standard_normal(3)))
        with pytest.raises(RoutingError):
            receiver.accept(self._packet(0, rng.standard_normal(3)))

    def test_unexpected_column_rejected(self, rng):
        receiver = Receiver([0, 1])
        with pytest.raises(RoutingError):
            receiver.accept(self._packet(9, rng.standard_normal(3)))

    def test_convergence_is_max_reduced(self, rng):
        receiver = Receiver([0, 1])
        receiver.accept(self._packet(0, rng.standard_normal(3)), 0.25)
        receiver.accept(self._packet(1, rng.standard_normal(3)), 0.75)
        assert receiver.convergence_ratio == 0.75


class TestReduceConvergence:
    def test_max_semantics(self):
        assert reduce_convergence([0.1, 0.9, 0.5]) == 0.9

    def test_empty_is_zero(self):
        assert reduce_convergence([]) == 0.0
