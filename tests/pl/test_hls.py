"""Unit tests for the HLS loop-overhead model."""

import pytest

from repro.errors import ConfigurationError
from repro.pl.hls import (
    HLS_FIXED_TRANSITIONS,
    HLS_LOOP_SWITCH_CYCLES,
    loop_overhead_cycles,
    loop_overhead_seconds,
)


class TestLoopOverhead:
    def test_cycle_count_formula(self):
        cycles = loop_overhead_cycles(iterations=2, num_block_pairs=10)
        expected = (2 * 10 + 2 + HLS_FIXED_TRANSITIONS) * HLS_LOOP_SWITCH_CYCLES
        assert cycles == expected

    def test_zero_loops_still_pay_fixed_transitions(self):
        assert loop_overhead_cycles(0, 0) == (
            HLS_FIXED_TRANSITIONS * HLS_LOOP_SWITCH_CYCLES
        )

    def test_seconds_scale_with_frequency(self):
        slow = loop_overhead_seconds(6, 100, 100e6)
        fast = loop_overhead_seconds(6, 100, 200e6)
        assert slow == pytest.approx(2 * fast)

    def test_overhead_is_small_versus_iteration(self):
        # t_hls must be a secondary effect: for 2016 pairs at 208 MHz it
        # stays well under 100 us per sweep.
        assert loop_overhead_seconds(1, 2016, 208.3e6) < 1e-4

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            loop_overhead_cycles(-1, 5)
        with pytest.raises(ConfigurationError):
            loop_overhead_cycles(1, -5)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            loop_overhead_seconds(1, 1, 0.0)
