"""Tests for the packet integrity (checksum trailer) path."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.pl.receiver import Receiver
from repro.pl.sender import Packet, Sender, payload_checksum


def route(slot, side):
    return (1, slot)


class TestChecksum:
    def test_deterministic(self, rng):
        payload = rng.standard_normal(16)
        assert payload_checksum(payload) == payload_checksum(payload.copy())

    def test_detects_single_bit_flip(self, rng):
        payload = rng.standard_normal(16).astype(np.float32)
        before = payload_checksum(payload)
        corrupted = payload.copy()
        raw = corrupted.view(np.uint32)
        raw[3] ^= 1  # flip one mantissa bit
        assert payload_checksum(corrupted) != before

    def test_32bit_range(self, rng):
        checksum = payload_checksum(rng.standard_normal(64))
        assert 0 <= checksum < 2**32


class TestIntegrityPath:
    def test_integrity_off_by_default(self, rng):
        packets = Sender(route).packetize(
            [0, 1], rng.standard_normal((8, 2))
        )
        assert all(p.checksum is None for p in packets)
        assert all(p.verify() for p in packets)

    def test_integrity_on_attaches_trailer(self, rng):
        sender = Sender(route, integrity=True)
        packets = sender.packetize([0, 1], rng.standard_normal((8, 2)))
        assert all(p.checksum is not None for p in packets)
        assert all(p.verify() for p in packets)
        # Trailer costs one extra stream word.
        plain = Sender(route).packetize([0, 1], rng.standard_normal((8, 2)))
        assert packets[0].bits == plain[0].bits + 32

    def test_receiver_accepts_intact_packets(self, rng):
        sender = Sender(route, integrity=True)
        data = rng.standard_normal((8, 2))
        packets = sender.packetize([0, 1], data)
        receiver = Receiver([0, 1])
        for p in packets:
            receiver.accept(p)
        assert np.allclose(receiver.reassemble(), data)

    def test_receiver_rejects_corruption(self, rng):
        sender = Sender(route, integrity=True)
        packets = sender.packetize([0, 1], rng.standard_normal((8, 2)))
        intact, victim = packets
        corrupted = Packet(
            header=victim.header,
            column_index=victim.column_index,
            payload=victim.payload + 1e-7,  # in-flight bit rot
            plio=victim.plio,
            checksum=victim.checksum,
        )
        receiver = Receiver([0, 1])
        receiver.accept(intact)
        with pytest.raises(RoutingError, match="integrity"):
            receiver.accept(corrupted)
