"""Unit tests for the convergence-control FSM."""

import pytest

from repro.errors import SimulationError
from repro.pl.system_module import Phase, SystemModule


class TestPrecisionMode:
    def test_continues_while_unconverged(self):
        system = SystemModule(precision=1e-6)
        assert system.report_iteration(0.5) is Phase.ORTHOGONALIZATION
        assert system.report_iteration(1e-3) is Phase.ORTHOGONALIZATION

    def test_switches_to_norm_on_convergence(self):
        system = SystemModule(precision=1e-6)
        system.report_iteration(0.1)
        assert system.report_iteration(1e-7) is Phase.NORMALIZATION
        assert system.converged

    def test_completion(self):
        system = SystemModule(precision=1e-6)
        system.report_iteration(1e-9)
        assert system.report_normalization_done() is Phase.DONE

    def test_history_recorded(self):
        system = SystemModule(precision=1e-6)
        system.report_iteration(0.3)
        system.report_iteration(1e-8)
        assert system.history == [0.3, 1e-8]
        assert system.iterations_completed == 2

    def test_iteration_bound_enforced(self):
        system = SystemModule(precision=1e-12, max_iterations=2)
        system.report_iteration(0.5)
        with pytest.raises(SimulationError):
            system.report_iteration(0.5)


class TestFixedIterationMode:
    def test_runs_exactly_n_sweeps(self):
        system = SystemModule(fixed_iterations=3)
        assert system.report_iteration(0.9) is Phase.ORTHOGONALIZATION
        assert system.report_iteration(0.9) is Phase.ORTHOGONALIZATION
        assert system.report_iteration(0.9) is Phase.NORMALIZATION

    def test_ignores_early_convergence(self):
        system = SystemModule(fixed_iterations=2, precision=1e-6)
        # Converged already, but fixed mode keeps going.
        assert system.report_iteration(1e-9) is Phase.ORTHOGONALIZATION

    def test_invalid_fixed_iterations(self):
        with pytest.raises(SimulationError):
            SystemModule(fixed_iterations=0)


class TestFSMErrors:
    def test_iteration_after_norm_rejected(self):
        system = SystemModule(fixed_iterations=1)
        system.report_iteration(0.5)
        with pytest.raises(SimulationError):
            system.report_iteration(0.5)

    def test_norm_done_without_norm_phase(self):
        system = SystemModule()
        with pytest.raises(SimulationError):
            system.report_normalization_done()

    def test_double_norm_done(self):
        system = SystemModule(fixed_iterations=1)
        system.report_iteration(0.5)
        system.report_normalization_done()
        with pytest.raises(SimulationError):
            system.report_normalization_done()
