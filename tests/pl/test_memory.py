"""Unit tests for the PL memory (URAM/BRAM/LUT) estimation."""

import pytest

from repro.errors import ConfigurationError
from repro.pl.memory import estimate_pl_memory, uram_per_task


class TestURAMModel:
    def test_small_matrix_packs_linearly(self):
        # Table II anchor: 128x128 uses 4 URAM.
        assert uram_per_task(128, 128, 8) == 4

    @pytest.mark.parametrize("p_eng", [2, 4, 8])
    def test_256_uses_16_per_task(self, p_eng):
        # Table VI anchor: 16 URAM per task at 256x256.
        assert uram_per_task(256, 256, p_eng) == 16

    def test_512_uses_64_at_p8(self):
        # Table II anchor.
        assert uram_per_task(512, 512, 8) == 64

    def test_1024_close_to_table2(self):
        # Table II reports 244; the banked model gives 240.
        assert uram_per_task(1024, 1024, 8) == 240

    def test_banking_rounds_up_per_bank(self):
        # Each of the 2k banks rounds to whole URAMs.
        assert uram_per_task(512, 512, 8) % 16 == 0

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            uram_per_task(0, 128, 8)
        with pytest.raises(ConfigurationError):
            uram_per_task(128, 128, 0)


class TestPLMemoryEstimate:
    def test_scales_with_tasks(self):
        one = estimate_pl_memory(256, 256, 4, 1)
        nine = estimate_pl_memory(256, 256, 4, 9)
        assert nine.uram == 9 * one.uram
        assert nine.bram == 9 * one.bram

    def test_table6_totals(self):
        # P_task = 26 at P_eng = 2: paper reports 416 URAM.
        assert estimate_pl_memory(256, 256, 2, 26).uram == 416
        # P_task = 2 at P_eng = 8: paper reports 32 URAM.
        assert estimate_pl_memory(256, 256, 8, 2).uram == 32

    def test_luts_near_15k(self):
        # Table II: ~15.1K-15.7K LUTs across sizes.
        for m in (128, 256, 512, 1024):
            luts = estimate_pl_memory(m, m, 8, 1).luts
            assert 14_000 <= luts <= 17_000

    def test_luts_grow_with_size_and_tasks(self):
        small = estimate_pl_memory(128, 128, 8, 1).luts
        large = estimate_pl_memory(1024, 1024, 8, 1).luts
        many = estimate_pl_memory(128, 128, 8, 9).luts
        assert large > small
        assert many > small

    def test_invalid_p_task(self):
        with pytest.raises(ConfigurationError):
            estimate_pl_memory(128, 128, 8, 0)
