"""Unit tests for the PL FIFO model."""

import pytest

from repro.errors import SimulationError
from repro.pl.fifo import FIFO


class TestFIFO:
    def test_fifo_order(self):
        fifo = FIFO("f")
        for item in (1, 2, 3):
            fifo.push(item)
        assert [fifo.pop() for _ in range(3)] == [1, 2, 3]

    def test_capacity_enforced(self):
        fifo = FIFO("f", capacity=2)
        fifo.push("a")
        fifo.push("b")
        assert fifo.full
        with pytest.raises(SimulationError):
            fifo.push("c")

    def test_underflow(self):
        with pytest.raises(SimulationError):
            FIFO("f").pop()

    def test_peek_does_not_remove(self):
        fifo = FIFO("f")
        fifo.push(42)
        assert fifo.peek() == 42
        assert len(fifo) == 1

    def test_peek_empty(self):
        with pytest.raises(SimulationError):
            FIFO("f").peek()

    def test_high_water_tracking(self):
        fifo = FIFO("f")
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        fifo.push(3)
        assert fifo.high_water == 2

    def test_statistics(self):
        fifo = FIFO("f")
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        assert fifo.pushed == 2
        assert fifo.popped == 1

    def test_clear_keeps_stats(self):
        fifo = FIFO("f")
        fifo.push(1)
        fifo.clear()
        assert fifo.empty
        assert fifo.pushed == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            FIFO("f", capacity=0)

    def test_unbounded_never_full(self):
        fifo = FIFO("f")
        for i in range(1000):
            fifo.push(i)
        assert not fifo.full
