"""Unit tests for the data arrangement module."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.linalg.block import block_pairs
from repro.pl.data_arrangement import DataArrangement


class TestDataArrangement:
    def test_block_counts(self, rng):
        da = DataArrangement(rng.standard_normal((8, 12)), block_width=3)
        assert da.n_blocks == 4
        assert da.num_block_pairs == 6

    def test_jobs_follow_round_robin_order(self, rng):
        da = DataArrangement(rng.standard_normal((6, 8)), block_width=2)
        jobs = list(da.iteration_jobs())
        assert [j.pair for j in jobs] == block_pairs(4)

    def test_job_payload_matches_columns(self, rng):
        a = rng.standard_normal((6, 8))
        da = DataArrangement(a, block_width=2)
        for job in da.iteration_jobs():
            assert np.array_equal(job.data, a[:, job.columns])
            assert job.bits == job.data.size * 32

    def test_retire_pair_writes_back(self, rng):
        a = rng.standard_normal((6, 8))
        da = DataArrangement(a, block_width=2)
        job = next(iter(da.iteration_jobs()))
        da.retire_pair(job, job.data * 2)
        assert np.allclose(da.working[:, job.columns], a[:, job.columns] * 2)

    def test_retire_shape_mismatch(self, rng):
        da = DataArrangement(rng.standard_normal((6, 8)), block_width=2)
        job = next(iter(da.iteration_jobs()))
        with pytest.raises(ConfigurationError):
            da.retire_pair(job, np.zeros((6, 3)))

    def test_original_matrix_unmodified(self, rng):
        a = rng.standard_normal((6, 8))
        copy = a.copy()
        da = DataArrangement(a, block_width=2)
        job = next(iter(da.iteration_jobs()))
        da.retire_pair(job, job.data * 5)
        assert np.array_equal(a, copy)

    def test_block_views(self, rng):
        a = rng.standard_normal((4, 6))
        da = DataArrangement(a, block_width=2)
        views = da.block_views()
        assert len(views) == 3
        assert np.array_equal(views[1], a[:, 2:4])

    def test_pairs_issued_counter(self, rng):
        da = DataArrangement(rng.standard_normal((4, 8)), block_width=2)
        list(da.iteration_jobs())
        list(da.iteration_jobs())
        assert da.pairs_issued == 12

    def test_store_results_copies(self, rng):
        a = rng.standard_normal((4, 6))
        da = DataArrangement(a, block_width=2)
        u = rng.standard_normal((4, 6))
        sigma = np.abs(rng.standard_normal(6))
        stored_u, stored_s = da.store_results(u, sigma)
        u[0, 0] = 999
        assert stored_u[0, 0] != 999

    def test_store_results_shape_check(self, rng):
        da = DataArrangement(rng.standard_normal((4, 6)), block_width=2)
        with pytest.raises(ConfigurationError):
            da.store_results(np.zeros((5, 6)), np.zeros(6))

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            DataArrangement(np.zeros(5), block_width=1)
