"""Tests for the high-level session API."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NumericalError
from repro.session import HeteroSVDSession


@pytest.fixture(scope="module")
def session():
    return HeteroSVDSession(64, 64, objective="latency", precision=1e-8)


@pytest.fixture(scope="module")
def v_session():
    return HeteroSVDSession(
        32, 32, objective="latency", precision=1e-8, accumulate_v=True
    )


class TestSessionSVD:
    def test_native_size(self, session, rng):
        a = rng.standard_normal((64, 64))
        result = session.svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)
        assert result.converged
        assert result.modelled_seconds > 0

    def test_odd_width_padded(self, session, rng):
        a = rng.standard_normal((40, 30))
        result = session.svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert len(result.singular_values) == 30
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_wide_matrix_transposed(self, session, rng):
        a = rng.standard_normal((24, 48))
        result = session.svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert len(result.singular_values) == 24
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)
        assert result.u.shape == (24, 24)
        # Wide inputs always carry V back (u/v swap).
        assert result.v is not None
        assert result.v.shape == (48, 24)

    def test_v_accumulation_and_reconstruct(self, v_session, rng):
        a = rng.standard_normal((32, 32))
        result = v_session.svd(a)
        assert np.allclose(result.reconstruct(), a, atol=1e-6)

    def test_reconstruct_requires_v(self, session, rng):
        result = session.svd(rng.standard_normal((64, 64)))
        with pytest.raises(NumericalError):
            result.reconstruct()

    def test_rejects_bad_input(self, session):
        with pytest.raises(NumericalError):
            session.svd(np.zeros((0, 4)))
        with pytest.raises(NumericalError):
            session.svd(np.ones(5))

    def test_batch(self, session, rng):
        mats = [rng.standard_normal((64, 64)) for _ in range(3)]
        results = session.svd_batch(mats)
        assert len(results) == 3


class TestSessionPlanning:
    def test_plan_covers_batch(self, session, rng):
        mats = [rng.standard_normal((64, 64)) for _ in range(5)]
        plan = session.plan(mats)
        assert len(plan.tasks) == 5
        assert plan.makespan > 0

    def test_admission_control(self, session, rng):
        mats = [rng.standard_normal((64, 64)) for _ in range(4)]
        makespan = session.plan(mats).makespan
        assert session.meets_deadline(mats, makespan * 1.1)
        assert not session.meets_deadline(mats, makespan * 0.5)

    def test_invalid_deadline(self, session, rng):
        with pytest.raises(ConfigurationError):
            session.meets_deadline([rng.standard_normal((8, 8))], 0.0)


class TestSessionConfiguration:
    def test_design_point_recorded(self, session):
        assert session.design.latency > 0
        assert session.config.p_eng >= 1

    def test_describe(self, session):
        text = session.describe()
        assert "P_eng" in text
        assert "ms" in text

    def test_power_cap_respected(self):
        capped = HeteroSVDSession(
            128, 128, objective="throughput", batch_hint=50,
            power_cap_w=30.0,
        )
        assert capped.design.power.total <= 30.0

    def test_accelerators_cached(self, session, rng):
        session.svd(rng.standard_normal((64, 64)))
        session.svd(rng.standard_normal((64, 64)))
        assert len(session._accelerators) >= 1


class TestSessionComplex:
    def test_complex_input_offloaded(self, rng):
        session = HeteroSVDSession(32, 32, precision=1e-8)
        z = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        result = session.svd(z)
        s_ref = np.linalg.svd(z, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)
        assert np.iscomplexobj(result.u)

    def test_complex_reconstruction(self, rng):
        session = HeteroSVDSession(32, 32, precision=1e-9)
        z = rng.standard_normal((12, 12)) + 1j * rng.standard_normal((12, 12))
        result = session.svd(z)
        err = np.linalg.norm(z - result.reconstruct()) / np.linalg.norm(z)
        assert err < 1e-6

    def test_wide_complex(self, rng):
        session = HeteroSVDSession(32, 32, precision=1e-8)
        z = rng.standard_normal((8, 14)) + 1j * rng.standard_normal((8, 14))
        result = session.svd(z)
        s_ref = np.linalg.svd(z, compute_uv=False)
        assert len(result.singular_values) == 8
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_accumulate_v_flag_restored(self, rng):
        session = HeteroSVDSession(32, 32, precision=1e-8, accumulate_v=False)
        z = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        session.svd(z)
        assert session.accumulate_v is False
