"""Tests for the metrics registry and its instruments."""

import time

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    _NULL,
)


class TestDisabledRegistry:
    def test_disabled_instruments_are_shared_noops(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is _NULL
        assert registry.gauge("b") is _NULL
        assert registry.histogram("c") is _NULL
        assert registry.timer("d") is _NULL
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("c").observe(2.0)
        with registry.timer("d"):
            pass
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"] == {"hits": 5}

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("makespan").set(3.0)
        registry.gauge("makespan").set(1.5)
        assert registry.snapshot()["gauges"] == {"makespan": 1.5}

    def test_histogram_statistics_and_buckets(self):
        hist = Histogram("t", bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 57.5
        assert hist.mean == 14.375
        assert hist.min == 0.5
        assert hist.max == 50.0
        assert hist.buckets == [1, 2, 1]  # <=1, <=10, overflow

    def test_default_bounds_cover_microseconds_to_seconds(self):
        hist = Histogram("t")
        hist.observe(5e-7)
        hist.observe(5.0)
        hist.observe(100.0)
        assert len(hist.buckets) == len(DEFAULT_BUCKET_BOUNDS) + 1
        assert hist.buckets[0] == 1        # sub-microsecond
        assert hist.buckets[-2] == 1       # <= 10 s
        assert hist.buckets[-1] == 1       # overflow

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry(enabled=True)
        with registry.timer("stage"):
            time.sleep(0.01)
        hist = registry.histogram("stage")
        assert hist.count == 1
        assert hist.total >= 0.01

    def test_reset_drops_everything(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        registry.reset()
        assert len(registry) == 0

    def test_snapshot_is_json_compatible(self):
        import json

        registry = MetricsRegistry(enabled=True)
        registry.counter("a").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(0.01)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        assert round_tripped["counters"]["a"] == 1
        assert round_tripped["histograms"]["h"]["count"] == 1

    def test_describe_renders_table_with_every_instrument(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("cache.hits").inc(3)
        registry.gauge("makespan").set(0.5)
        registry.histogram("chunk").observe(0.25)
        text = registry.describe()
        assert "cache.hits" in text
        assert "makespan" in text
        assert "chunk" in text
        assert "n=1" in text
