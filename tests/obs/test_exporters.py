"""Exporter round-trips: plain JSON, Chrome trace, metrics JSON."""

import json

import pytest

from repro.obs.exporters import (
    export_chrome_trace,
    export_metrics_json,
    export_trace_json,
    load_chrome_trace,
    load_metrics_json,
    load_trace_json,
    trace_to_chrome,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", category="dse", m=64):
        with tracer.span("inner"):
            pass
    return tracer


class TestTraceJson:
    def test_round_trip_preserves_every_field(self, traced, tmp_path):
        path = export_trace_json(traced.spans, tmp_path / "trace.json")
        restored = load_trace_json(path)
        assert restored == traced.spans

    def test_plain_json_is_greppable(self, traced, tmp_path):
        path = export_trace_json(traced.spans, tmp_path / "trace.json")
        entries = json.loads(path.read_text())
        assert [e["name"] for e in entries] == ["outer", "inner"]
        assert entries[0]["args"] == {"m": 64}


class TestChromeTrace:
    def test_events_have_viewer_required_fields(self, traced):
        data = trace_to_chrome(traced)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid"}
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_includes_process_name_metadata(self, traced):
        data = trace_to_chrome(traced, process_name="svd-sweep")
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "svd-sweep"

    def test_nesting_is_visible_in_timestamps(self, traced):
        data = trace_to_chrome(traced)
        by_name = {e["name"]: e for e in data["traceEvents"]
                   if e["ph"] == "X"}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_export_parses_back(self, traced, tmp_path):
        path = export_chrome_trace(traced, tmp_path / "chrome.json")
        data = load_chrome_trace(path)
        names = {e["name"] for e in data["traceEvents"]}
        assert {"outer", "inner"} <= names

    def test_load_rejects_non_trace_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"spans": []}))
        with pytest.raises(ValueError):
            load_chrome_trace(bad)
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        with pytest.raises(ValueError):
            load_chrome_trace(bad)


class TestMetricsJson:
    def test_round_trip(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("cache.hits").inc(7)
        registry.gauge("makespan").set(0.25)
        registry.histogram("chunk").observe(0.1)
        path = export_metrics_json(registry, tmp_path / "metrics.json")
        restored = load_metrics_json(path)
        assert restored == registry.snapshot()
        assert restored["counters"]["cache.hits"] == 7
