"""Hot-span aggregation and the end-to-end observability contract."""

import json

import pytest

from repro import obs
from repro.core.dse import DesignSpaceExplorer
from repro.exec.cache import EvalCache
from repro.io import design_point_to_dict
from repro.obs.profile import aggregate
from repro.obs.tracer import Span, Tracer
from repro.reporting.tables import hot_spans_table


def _span(index, name, duration, parent=None):
    return Span(name=name, duration=duration, index=index, parent=parent)


class TestAggregate:
    def test_groups_by_name_and_sorts_by_self_time(self):
        spans = [
            _span(0, "outer", 1.0),
            _span(1, "inner", 0.7, parent=0),
            _span(2, "inner", 0.1, parent=0),
        ]
        stats = aggregate(spans)
        assert [s.name for s in stats] == ["inner", "outer"]
        inner, outer = stats
        assert inner.count == 2
        assert inner.total == pytest.approx(0.8)
        assert inner.self_time == pytest.approx(0.8)  # leaves: self == total
        assert outer.self_time == pytest.approx(0.2)  # minus both children
        assert inner.min == 0.1 and inner.max == 0.7
        assert inner.mean == pytest.approx(0.4)

    def test_self_times_sum_to_wall_clock(self):
        spans = [
            _span(0, "a", 2.0),
            _span(1, "b", 1.5, parent=0),
            _span(2, "c", 0.5, parent=1),
        ]
        stats = aggregate(spans)
        assert abs(sum(s.self_time for s in stats) - 2.0) < 1e-12

    def test_empty_trace(self):
        assert aggregate([]) == []

    def test_table_renders_rows(self):
        stats = aggregate([_span(0, "x", 0.5), _span(1, "y", 0.1)])
        text = hot_spans_table(stats).render()
        assert "x" in text and "y" in text
        text_top = hot_spans_table(stats, top=1).render()
        assert "y" not in text_top


class TestRealTraceAggregation:
    def test_traced_sweep_yields_stage_spans(self):
        obs.enable()
        obs.reset()
        try:
            DesignSpaceExplorer(64, 64).explore(jobs=1, cache=EvalCache())
        finally:
            obs.disable()
        names = {s.name for s in obs.get_tracer().spans}
        assert {"dse.explore", "dse.stage1", "dse.stage2"} <= names
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["cache.misses"] > 0
        assert counters["dse.candidates"] > 0
        stats = aggregate(obs.get_tracer().spans)
        assert stats  # something was hot
        assert all(s.self_time >= 0 for s in stats)


class TestNumericParity:
    """The tentpole invariant: instrumentation changes zero outputs."""

    def test_instrumented_explore_is_byte_identical(self):
        explorer = DesignSpaceExplorer(64, 64)
        plain = explorer.explore()
        obs.enable()
        obs.reset()
        try:
            traced = explorer.explore()
            traced_parallel = explorer.explore(jobs=2, cache=EvalCache())
        finally:
            obs.disable()
        for candidate in (traced, traced_parallel):
            assert json.dumps(
                [design_point_to_dict(p) for p in candidate], sort_keys=True
            ) == json.dumps(
                [design_point_to_dict(p) for p in plain], sort_keys=True
            )
