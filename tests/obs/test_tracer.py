"""Tests for the span tracer: recording, nesting, disabled overhead."""

import os
import time

from repro.obs.tracer import Tracer, _NULL_CONTEXT


class TestDisabledTracer:
    """The off-by-default contract: disabled tracing allocates nothing."""

    def test_span_returns_shared_null_context(self):
        tracer = Tracer()
        first = tracer.span("a")
        second = tracer.span("b", category="c", items=3)
        # Identity, not just equality: the disabled path hands back one
        # preallocated no-op object — no per-call allocation at all.
        assert first is second
        assert first is _NULL_CONTEXT

    def test_disabled_span_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.spans == []

    def test_disabled_decorator_calls_straight_through(self):
        tracer = Tracer()
        calls = []

        @tracer.trace()
        def work(x):
            calls.append(x)
            return x * 2

        assert work(21) == 42
        assert calls == [21]
        assert tracer.spans == []

    def test_disabled_record_span_is_noop(self):
        tracer = Tracer()
        assert tracer.record_span("chunk", 0.5) is None
        assert tracer.spans == []


class TestRecording:
    def test_span_records_timing_fields(self):
        tracer = Tracer(enabled=True)
        before = time.time()
        with tracer.span("work", category="test", items=7) as span:
            time.sleep(0.01)
        assert len(tracer.spans) == 1
        assert span.name == "work"
        assert span.category == "test"
        assert span.args == {"items": 7}
        assert span.duration >= 0.01
        assert before <= span.start_wall <= time.time()
        assert span.pid == os.getpid()

    def test_nesting_records_depth_and_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.index
        assert sibling.depth == 1 and sibling.parent == outer.index
        # children close before the parent: durations nest
        assert outer.duration >= inner.duration + sibling.duration

    def test_decorator_uses_qualname_and_records(self):
        tracer = Tracer(enabled=True)

        @tracer.trace()
        def do_work():
            return 1

        @tracer.trace("custom", category="cat")
        def other():
            return 2

        assert do_work() == 1
        assert other() == 2
        assert [s.name for s in tracer.spans] == \
            [do_work.__wrapped__.__qualname__, "custom"]
        assert tracer.spans[1].category == "cat"

    def test_decorated_function_exception_still_closes_span(self):
        tracer = Tracer(enabled=True)

        @tracer.trace("boom")
        def explode():
            raise ValueError("no")

        try:
            explode()
        except ValueError:
            pass
        assert len(tracer.spans) == 1
        assert tracer.spans[0].duration > 0
        assert tracer._stack == []

    def test_record_span_attaches_to_open_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("map") as parent:
            recorded = tracer.record_span("chunk", 0.25, chunk=3)
        assert recorded.parent == parent.index
        assert recorded.duration == 0.25
        assert recorded.args == {"chunk": 3}

    def test_reset_drops_spans_and_reanchors_epoch(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        old_epoch = tracer.epoch_perf
        tracer.reset()
        assert tracer.spans == []
        assert tracer.epoch_perf >= old_epoch
        assert tracer.enabled  # reset does not flip the switch

    def test_enable_disable_toggle(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        tracer.disable()
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans] == ["a"]
