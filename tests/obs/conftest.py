"""Shared fixtures: keep the global observability state clean.

Every test in this package runs with the default tracer and registry
disabled and empty before and after, so obs tests cannot leak spans or
instruments into the rest of the suite (or each other).
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
