"""Tests for the widened design space (orderings x frequency derates)."""

import pytest

from repro.dse import DesignSpace, SpaceUnit
from repro.errors import ConfigurationError, DesignSpaceError


@pytest.fixture(scope="module")
def space():
    return DesignSpace(32, 32)


class TestSpaceUnit:
    def test_unknown_ordering_raises(self):
        with pytest.raises(ConfigurationError, match="ordering"):
            SpaceUnit(4, 1, "spiral", 1.0)

    def test_derate_bounds(self):
        with pytest.raises(ConfigurationError, match="freq_derate"):
            SpaceUnit(4, 1, "codesign", 0.0)
        with pytest.raises(ConfigurationError, match="freq_derate"):
            SpaceUnit(4, 1, "codesign", 1.2)

    def test_build_config_applies_both_axes(self, space):
        explorer = space.explorer()
        base = explorer.make_config(4, 1)
        derated = SpaceUnit(4, 1, "traditional", 0.9).build_config(explorer)
        assert derated.use_codesign is False
        assert derated.pl_frequency_hz == pytest.approx(
            base.pl_frequency_hz * 0.9
        )
        full = SpaceUnit(4, 1, "codesign", 1.0).build_config(explorer)
        assert full.use_codesign is True
        assert full.pl_frequency_hz == base.pl_frequency_hz

    def test_round_trip(self):
        unit = SpaceUnit(8, 2, "traditional", 0.9)
        assert SpaceUnit.from_dict(unit.to_dict()) == unit


class TestDesignSpace:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="batch"):
            DesignSpace(32, 32, batch=0)
        with pytest.raises(ConfigurationError, match="ordering"):
            DesignSpace(32, 32, orderings=())
        with pytest.raises(ConfigurationError, match="ordering"):
            DesignSpace(32, 32, orderings=("spiral",))
        with pytest.raises(ConfigurationError, match="derate"):
            DesignSpace(32, 32, freq_derates=())

    def test_units_cross_every_axis_in_canonical_order(self, space):
        units = space.units()
        candidates = space.explorer().candidates()
        assert len(units) == len(candidates) * 2 * 2
        # New axes are innermost: the first candidate's four variants
        # come first, orderings outer, derates inner.
        p_eng, p_task = candidates[0]
        assert units[:4] == [
            SpaceUnit(p_eng, p_task, "codesign", 1.0),
            SpaceUnit(p_eng, p_task, "codesign", 0.9),
            SpaceUnit(p_eng, p_task, "traditional", 1.0),
            SpaceUnit(p_eng, p_task, "traditional", 0.9),
        ]

    def test_unit_keys_are_unique_and_aligned(self, space):
        keys = space.unit_keys()
        assert len(keys) == len(space.units())
        assert len(set(keys)) == len(keys)

    def test_keys_interoperate_with_classic_sweep(self, space):
        """A (codesign, 1.0) unit keys identically to the classic
        checkpointed sweep's key for the same configuration — ledgers
        from either path stay mutually resumable."""
        from repro.exec.cache import key_for_config

        explorer = space.explorer()
        unit = next(
            u for u in space.units()
            if u.ordering == "codesign" and u.freq_derate == 1.0
        )
        index = space.units().index(unit)
        classic = key_for_config(
            "dse-evaluate",
            explorer.make_config(unit.p_eng, unit.p_task),
            batch=1,
        )
        assert space.unit_keys()[index] == classic

    def test_round_trip_preserves_keys(self, space):
        clone = DesignSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        assert clone.unit_keys() == space.unit_keys()

    def test_from_dict_rejects_unknown_format(self, space):
        data = space.to_dict()
        data["format"] = 99
        with pytest.raises(ConfigurationError, match="format"):
            DesignSpace.from_dict(data)

    def test_explore_serial_follows_canonical_order(self, space):
        points = space.explore_serial()
        units = space.units()
        assert len(points) == len(units)
        for unit, point in zip(units[:8], points[:8]):
            assert point.config.p_eng == unit.p_eng
            assert point.config.use_codesign == (unit.ordering == "codesign")

    def test_ordering_axis_changes_the_model(self, space):
        """The ring ordering is a real axis: same pair, same clock,
        different predicted performance."""
        points = space.explore_serial()
        units = space.units()
        by_unit = dict(zip(units, points))
        # A single-engine ring has no inter-engine DMA either way; the
        # orderings only diverge once the ring has >= 2 engines.
        pair = next(
            (u.p_eng, u.p_task) for u in units if u.p_eng > 1
        )
        codesign = by_unit[SpaceUnit(*pair, "codesign", 1.0)]
        traditional = by_unit[SpaceUnit(*pair, "traditional", 1.0)]
        assert codesign.latency != traditional.latency

    def test_power_cap_is_a_view(self):
        capped = DesignSpace(32, 32, freq_derates=(1.0,),
                             orderings=("codesign",), power_cap_w=1e-9)
        with pytest.raises(DesignSpaceError, match="feasible"):
            capped.explore_serial()

    def test_ranked_validates_objective(self, space):
        with pytest.raises(ConfigurationError, match="objective"):
            space.ranked([], objective="area")

    def test_ranked_orders_best_first(self, space):
        points = space.explore_serial()
        ranked = space.ranked(points, "latency")
        values = [p.objective_value("latency") for p in ranked]
        assert values == sorted(values, reverse=True)

    def test_describe_mentions_axes(self, space):
        text = space.describe()
        assert "2 orderings" in text and "2 derates" in text
