"""Tests for the crash-safe sharded sweep (partition, leases, steal)."""

import json

import pytest

from repro.analysis.pareto import merge_shards, pareto_front
from repro.dse import DesignSpace, ShardPlan, run_shard
from repro.dse.sharded import (
    recover_missing_units,
    shard_ledger_path,
    shard_lease_path,
)
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
)
from repro.io import design_point_to_dict
from repro.resilience import FaultPlan, FaultSpec, read_lease


def small_space():
    """One-ordering, one-derate space: 95 units, fast to sweep."""
    return DesignSpace(32, 32, orderings=("codesign",), freq_derates=(1.0,))


def frontier_bytes(points):
    return json.dumps(
        [design_point_to_dict(p) for p in points], sort_keys=True
    )


@pytest.fixture(scope="module")
def space():
    return small_space()


@pytest.fixture(scope="module")
def reference(space):
    return frontier_bytes(pareto_front(space.explore_serial()))


class TestShardPlan:
    def test_partition_is_disjoint_and_total(self, space):
        plan = ShardPlan.partition(space, shards=3)
        seen = []
        for shard in range(3):
            seen.extend(key for _, _, key in plan.units_for(shard))
        assert sorted(seen) == sorted(space.unit_keys())
        assert len(seen) == len(set(seen))

    def test_assignment_depends_only_on_seed_and_key(self, space):
        plan_a = ShardPlan.partition(space, shards=3, seed=5)
        plan_b = ShardPlan.partition(small_space(), shards=3, seed=5)
        for key in space.unit_keys():
            assert plan_a.shard_of(key) == plan_b.shard_of(key)

    def test_seed_reshuffles_the_partition(self, space):
        plan_a = ShardPlan.partition(space, shards=3, seed=0)
        plan_b = ShardPlan.partition(space, shards=3, seed=1)
        moved = [
            key for key in space.unit_keys()
            if plan_a.shard_of(key) != plan_b.shard_of(key)
        ]
        assert moved  # a different seed is a different partition

    def test_units_keep_canonical_order_within_a_shard(self, space):
        plan = ShardPlan.partition(space, shards=2)
        for shard in range(2):
            indices = [index for index, _, _ in plan.units_for(shard)]
            assert indices == sorted(indices)

    def test_shard_count_validation(self, space):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardPlan.partition(space, shards=0)
        plan = ShardPlan.partition(space, shards=2)
        with pytest.raises(ConfigurationError, match="shard id"):
            plan.units_for(2)

    def test_save_load_round_trip(self, space, tmp_path):
        plan = ShardPlan.partition(space, shards=2, seed=9)
        plan.save(tmp_path)
        loaded = ShardPlan.load(tmp_path)
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.space.unit_keys() == space.unit_keys()

    def test_save_refuses_a_different_plan(self, space, tmp_path):
        ShardPlan.partition(space, shards=2).save(tmp_path)
        with pytest.raises(ConfigurationError, match="different sweep"):
            ShardPlan.partition(space, shards=3).save(tmp_path)

    def test_ensure_requires_a_first_participant(self, tmp_path):
        with pytest.raises(ConfigurationError, match="first participant"):
            ShardPlan.ensure(tmp_path)


class TestRunShard:
    def test_two_shards_cover_the_space(self, space, reference, tmp_path):
        stats = [
            run_shard(tmp_path, shard, space=space, shards=2, steal=False)
            for shard in (0, 1)
        ]
        total = sum(s["evaluated"] for s in stats)
        assert total == len(space.units())
        merge = merge_shards(tmp_path)
        assert merge.complete
        assert frontier_bytes(merge.frontier) == reference

    def test_rerun_resumes_from_the_ledger(self, space, tmp_path):
        run_shard(tmp_path, 0, space=space, shards=2, steal=False)
        again = run_shard(tmp_path, 0, space=space, shards=2, steal=False)
        assert again["evaluated"] == 0
        assert again["skipped"] == len(
            ShardPlan.partition(space, 2).units_for(0)
        )

    def test_steals_an_absent_sibling(self, space, reference, tmp_path):
        """A sibling that never starts has no lease — its whole work
        list is claimable immediately."""
        stats = run_shard(
            tmp_path, 0, space=space, shards=2, lease_ttl=0.5, steal=True
        )
        plan = ShardPlan.partition(space, 2)
        assert stats["steals"] == 1
        assert stats["stolen"] == len(plan.units_for(1))
        # The claim is on the record: generation bumped, marked done.
        lease = read_lease(shard_lease_path(tmp_path, 1))
        assert lease.generation == 1
        assert lease.done
        merge = merge_shards(tmp_path)
        assert merge.complete
        assert frontier_bytes(merge.frontier) == reference
        assert merge.shards[1].steal_count == 1

    def test_crash_keeps_partial_progress_then_resumes(
        self, space, reference, tmp_path
    ):
        plan = FaultPlan(
            faults=[FaultSpec(site="dse.shard_crash", at=(1,))]
        )
        with plan.activate():
            with pytest.raises(FaultInjectionError, match="crash"):
                run_shard(tmp_path, 0, space=space, shards=1, chunk=8,
                          lease_ttl=0.05)
        survived = len(
            json.loads(shard_ledger_path(tmp_path, 0).read_text())["entries"]
        )
        assert survived == 8  # exactly the chunks before the crash
        # The crashed run's lease is still on disk; once its TTL lapses
        # the resuming owner may retake it.
        import time

        time.sleep(0.1)
        resumed = run_shard(tmp_path, 0, chunk=8)
        assert resumed["skipped"] == survived
        assert resumed["evaluated"] == len(space.units()) - survived
        merge = merge_shards(tmp_path)
        assert frontier_bytes(merge.frontier) == reference

    def test_stall_site_only_delays(self, space, tmp_path):
        plan = FaultPlan(
            faults=[FaultSpec(site="dse.shard_stall", at=(0,),
                              param=0.01)]
        )
        with plan.activate():
            stats = run_shard(tmp_path, 0, space=space, shards=1)
        assert stats["evaluated"] == len(space.units())

    def test_shard_id_out_of_range(self, space, tmp_path):
        with pytest.raises(ConfigurationError, match="shard id"):
            run_shard(tmp_path, 5, space=space, shards=2, steal=False)

    def test_torn_ledger_quarantined_on_resume(
        self, space, reference, tmp_path
    ):
        run_shard(tmp_path, 0, space=space, shards=1)
        ledger = shard_ledger_path(tmp_path, 0)
        payload = ledger.read_text()
        ledger.write_text(payload[: len(payload) // 2])
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            stats = run_shard(tmp_path, 0)
        assert stats["evaluated"] == len(space.units())  # full re-sweep
        assert list(tmp_path.glob("shard-0.json.corrupt-*"))
        merge = merge_shards(tmp_path)
        assert frontier_bytes(merge.frontier) == reference
        assert merge.shards[0].quarantined


class TestFaultSites:
    def test_sharded_sites_are_registered(self):
        from repro.resilience.faults import registered_sites

        for site in ("dse.shard_crash", "dse.shard_stall",
                     "checkpoint.torn_write"):
            assert site in registered_sites()

    def test_committed_chaos_plan_loads(self):
        from pathlib import Path

        from repro.resilience import load_fault_plan

        plan_path = Path(__file__).resolve().parents[2] / (
            "examples/fault_plans/dse_chaos.json"
        )
        plan = load_fault_plan(plan_path)
        assert set(plan.specs) == {"dse.shard_crash", "dse.shard_stall",
                                   "checkpoint.torn_write"}


class TestRecovery:
    def test_recover_missing_units_closes_the_gap(self, space, tmp_path):
        run_shard(tmp_path, 0, space=space, shards=2, steal=False)
        plan = ShardPlan.partition(space, 2)
        missing = len(plan.units_for(1))
        assert recover_missing_units(tmp_path) == missing
        assert (tmp_path / "recovered.json").exists()
        assert recover_missing_units(tmp_path) == 0  # idempotent
        merge = merge_shards(tmp_path)
        assert merge.complete
