"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic RNG for test inputs."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng):
    """A well-conditioned 16x8 test matrix."""
    return rng.standard_normal((16, 8))


@pytest.fixture
def square_matrix(rng):
    """A 32x32 test matrix (divisible by every small P_eng)."""
    return rng.standard_normal((32, 32))
