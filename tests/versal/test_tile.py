"""Unit tests for the AIE tile model (mirrored-row topology)."""


from repro.versal.tile import (
    AIETile,
    MemorySide,
    TileKind,
    memory_side_of_row,
)


class TestMemorySide:
    def test_even_rows_have_memory_east(self):
        # Paper: "in even rows, each computation core is located on the
        # left side of its internal memory".
        assert memory_side_of_row(0) is MemorySide.EAST
        assert memory_side_of_row(2) is MemorySide.EAST

    def test_odd_rows_are_mirrored(self):
        assert memory_side_of_row(1) is MemorySide.WEST
        assert memory_side_of_row(3) is MemorySide.WEST


class TestAccessibleMemories:
    def test_even_row_reaches_west_neighbour(self):
        tile = AIETile(row=2, col=5)
        mems = tile.accessible_memories(n_rows=8, n_cols=50)
        assert mems == {(2, 5), (1, 5), (3, 5), (2, 4)}

    def test_odd_row_reaches_east_neighbour(self):
        tile = AIETile(row=3, col=5)
        mems = tile.accessible_memories(n_rows=8, n_cols=50)
        assert mems == {(3, 5), (2, 5), (4, 5), (3, 6)}

    def test_corner_tiles_clip_to_array(self):
        tile = AIETile(row=0, col=0)
        mems = tile.accessible_memories(n_rows=8, n_cols=50)
        # Own + north; west neighbour and south are outside.
        assert mems == {(0, 0), (1, 0)}

    def test_top_right_corner(self):
        tile = AIETile(row=7, col=49)
        mems = tile.accessible_memories(n_rows=8, n_cols=50)
        # Odd row wants the east neighbour (49+1 = 50, outside).
        assert mems == {(7, 49), (6, 49)}

    def test_always_includes_own_memory(self):
        for row in range(4):
            for col in range(4):
                tile = AIETile(row=row, col=col)
                assert (row, col) in tile.accessible_memories(4, 4)

    def test_at_most_four_memories(self):
        for row in range(8):
            tile = AIETile(row=row, col=25)
            assert len(tile.accessible_memories(8, 50)) <= 4


class TestTileBasics:
    def test_defaults(self):
        tile = AIETile(row=1, col=2)
        assert tile.kind is TileKind.IDLE
        assert tile.coord == (1, 2)
        assert tile.memory.capacity_bits == 4 * 8 * 1024 * 8

    def test_memory_side_property(self):
        assert AIETile(row=4, col=0).memory_side is MemorySide.EAST
        assert AIETile(row=5, col=0).memory_side is MemorySide.WEST
