"""Tests for the assembled norm kernel on the ISA model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.versal.aie_isa import build_norm_kernel, run_norm_kernel
from repro.versal.kernels import norm_kernel_cycles


class TestNormKernel:
    @pytest.mark.parametrize("m", [8, 64, 256])
    def test_functional_result(self, rng, m):
        b = rng.standard_normal(m)
        u, sigma, _ = run_norm_kernel(b)
        assert sigma == pytest.approx(np.linalg.norm(b))
        assert np.allclose(u, b / np.linalg.norm(b))
        assert np.linalg.norm(u) == pytest.approx(1.0)

    @pytest.mark.parametrize("m", [64, 128, 256, 512])
    def test_cycles_match_closed_form(self, rng, m):
        # The closed-form norm model's constants are derived from this
        # schedule; exact agreement is required for vector multiples.
        _, _, result = run_norm_kernel(rng.standard_normal(m),
                                       overhead_cycles=40)
        assert result.cycles == norm_kernel_cycles(m, 1)

    def test_norm_cheaper_than_orth(self, rng):
        from repro.versal.aie_isa import run_orth_kernel

        b = rng.standard_normal(128)
        _, _, norm_result = run_norm_kernel(b)
        _, _, orth_result = run_orth_kernel(b, rng.standard_normal(128))
        assert norm_result.cycles < orth_result.cycles

    def test_rejects_bad_lengths(self):
        with pytest.raises(SimulationError):
            build_norm_kernel(10)

    def test_rejects_matrix_input(self, rng):
        with pytest.raises(SimulationError):
            run_norm_kernel(rng.standard_normal((8, 8)))
