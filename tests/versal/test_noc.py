"""Unit tests for the NoC/DDR channel model."""

import pytest

from repro.errors import CommunicationError
from repro.versal.noc import DDRChannel


class TestDDRChannel:
    def test_sustained_bandwidth(self):
        ddr = DDRChannel(efficiency=0.8)
        assert ddr.bits_per_s == pytest.approx(25.6e9 * 8 * 0.8)

    def test_transfer_time_linear(self):
        ddr = DDRChannel()
        assert ddr.transfer_seconds(2000) == pytest.approx(
            2 * ddr.transfer_seconds(1000)
        )

    def test_zero_payload(self):
        assert DDRChannel().transfer_seconds(0) == 0.0

    def test_negative_payload(self):
        with pytest.raises(CommunicationError):
            DDRChannel().transfer_seconds(-1)

    @pytest.mark.parametrize("eff", [0.0, -0.1, 1.5])
    def test_invalid_efficiency(self, eff):
        with pytest.raises(CommunicationError):
            DDRChannel(efficiency=eff)
