"""Unit tests for the PLIO interface model (Eq. 8)."""

import pytest

from repro.errors import CommunicationError
from repro.units import mhz
from repro.versal.plio import (
    NORM_PLIOS_PER_TASK,
    ORTH_PLIOS_PER_TASK,
    PLIOS_PER_TASK,
    PLIODirection,
    PLIOPort,
)


class TestPLIOConstants:
    def test_six_plios_per_task(self):
        # Section III-C: 4 orth + 2 norm.
        assert PLIOS_PER_TASK == 6
        assert ORTH_PLIOS_PER_TASK + NORM_PLIOS_PER_TASK == PLIOS_PER_TASK


class TestPLIOPort:
    def test_eq8_transfer_time(self):
        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        f = mhz(200)
        bits = 128 * 100
        # Below the interface cap: t = bits / (width * f).
        assert port.transfer_seconds(bits, f) == pytest.approx(
            bits / (128 * f)
        )

    def test_transfer_scales_inversely_with_frequency(self):
        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        slow = port.transfer_seconds(12800, mhz(100))
        fast = port.transfer_seconds(12800, mhz(200))
        assert slow == pytest.approx(2 * fast)

    def test_bandwidth_ceiling_directions(self):
        to_pl = PLIOPort(index=0, direction=PLIODirection.AIE_TO_PL)
        to_aie = PLIOPort(index=1, direction=PLIODirection.PL_TO_AIE)
        # Paper: 24 GB/s AIE->PL, 32 GB/s PL->AIE.
        assert to_pl.bandwidth_ceiling_bits_per_s() == pytest.approx(24e9 * 8)
        assert to_aie.bandwidth_ceiling_bits_per_s() == pytest.approx(32e9 * 8)

    def test_ceiling_caps_high_clocks(self):
        # A hypothetical extremely wide port would hit the interface cap.
        port = PLIOPort(
            index=0, direction=PLIODirection.AIE_TO_PL, width_bits=4096
        )
        rate = port.effective_bits_per_s(mhz(450))
        assert rate == pytest.approx(24e9 * 8)

    def test_pl_cycles_view(self):
        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        f = mhz(300)
        cycles = port.transfer_pl_cycles(128 * 64, f)
        assert cycles == pytest.approx(64)

    def test_invalid_frequency(self):
        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        with pytest.raises(CommunicationError):
            port.transfer_seconds(100, 0.0)

    def test_negative_payload(self):
        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        with pytest.raises(CommunicationError):
            port.transfer_seconds(-5, mhz(100))
