"""Unit tests for the stream-switch interconnect."""

import pytest

from repro.errors import RoutingError
from repro.versal.array import AIEArray
from repro.versal.interconnect import (
    HOP_CYCLES,
    INJECTION_CYCLES,
    LinkOccupancy,
    dma_route_cycles,
    route,
    shim_route,
)


@pytest.fixture
def array():
    return AIEArray()


class TestRoute:
    def test_self_route_is_zero_hops(self, array):
        r = route(array, (3, 10), (3, 10))
        assert r.hop_count == 0
        assert r.latency_cycles == INJECTION_CYCLES

    def test_dimension_order_x_then_y(self, array):
        r = route(array, (1, 2), (4, 5))
        assert r.hops[0] == (1, 2)
        assert r.hops[3] == (1, 5)  # finished X leg first
        assert r.hops[-1] == (4, 5)

    def test_hop_count_is_manhattan_distance(self, array):
        r = route(array, (0, 0), (7, 49))
        assert r.hop_count == 7 + 49

    def test_latency_linear_in_hops(self, array):
        r = route(array, (2, 3), (2, 8))
        assert r.latency_cycles == INJECTION_CYCLES + 5 * HOP_CYCLES

    def test_leftward_and_downward(self, array):
        r = route(array, (6, 20), (1, 5))
        assert r.hops[-1] == (1, 5)
        assert r.hop_count == 5 + 15

    def test_links_are_consecutive(self, array):
        r = route(array, (0, 0), (2, 2))
        for (a, b) in r.links():
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_rejects_outside_coordinates(self, array):
        with pytest.raises(RoutingError):
            route(array, (0, 0), (8, 0))
        with pytest.raises(RoutingError):
            route(array, (0, 50), (0, 0))


class TestShimRoute:
    def test_enters_from_below(self, array):
        r = shim_route(array, shim_col=10, destination=(3, 10))
        assert r.hops[0] == (-1, 10)
        assert r.hop_count == 4

    def test_dma_cycles_wrapper(self, array):
        cycles = dma_route_cycles(array, (1, 1), (1, 4))
        assert cycles == INJECTION_CYCLES + 3 * HOP_CYCLES


class TestLinkOccupancy:
    def test_counts_overlapping_routes(self, array):
        occupancy = LinkOccupancy()
        occupancy.add(route(array, (0, 0), (0, 5)))
        occupancy.add(route(array, (0, 2), (0, 6)))
        # Links between columns 2..5 in row 0 carry both routes.
        assert occupancy.occupancy((0, 3), (0, 4)) == 2
        assert occupancy.max_occupancy() == 2

    def test_empty(self):
        assert LinkOccupancy().max_occupancy() == 0

    def test_busiest_links_sorted(self, array):
        occupancy = LinkOccupancy()
        for _ in range(3):
            occupancy.add(route(array, (0, 0), (0, 2)))
        occupancy.add(route(array, (5, 5), (5, 6)))
        ranked = occupancy.busiest_links(top=2)
        assert ranked[0][1] == 3
        assert ranked[1][1] <= 3
