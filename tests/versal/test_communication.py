"""Unit tests for the inter-AIE communication mechanisms (Fig. 1)."""

import pytest

from repro.errors import CommunicationError
from repro.versal.array import AIEArray
from repro.versal.communication import (
    MEMORY_OVERHEAD_FACTOR,
    TRANSFER_BITS_PER_CYCLE,
    Transfer,
    TransferKind,
    classify_move,
    transfer_cycles,
)


class TestTransferCycles:
    def test_neighbor_is_fastest(self):
        bits = 4096
        times = {
            kind: transfer_cycles(kind, bits) for kind in TransferKind
        }
        assert times[TransferKind.NEIGHBOR] < times[TransferKind.DMA]
        assert times[TransferKind.NEIGHBOR] < times[TransferKind.STREAM_FORWARD]

    def test_stream_comparable_to_dma(self):
        # Paper: stream speed "comparable to that of DMA".
        bits = 128 * 32
        dma = transfer_cycles(TransferKind.DMA, bits)
        stream = transfer_cycles(TransferKind.STREAM_FORWARD, bits)
        assert 0.5 < stream / dma < 2.0

    def test_linear_in_payload(self):
        small = transfer_cycles(TransferKind.DMA, 3200)
        large = transfer_cycles(TransferKind.DMA, 6400)
        setup = transfer_cycles(TransferKind.DMA, 0)
        assert large - setup == pytest.approx(2 * (small - setup))

    def test_negative_payload(self):
        with pytest.raises(CommunicationError):
            transfer_cycles(TransferKind.DMA, -1)

    def test_rates_table_complete(self):
        for kind in TransferKind:
            assert kind in TRANSFER_BITS_PER_CYCLE
            assert kind in MEMORY_OVERHEAD_FACTOR


class TestTransferObject:
    def test_dma_doubles_memory(self):
        t = Transfer(src=(1, 1), dst=(1, 3), bits=1024, kind=TransferKind.DMA)
        assert t.memory_bits == 2048

    def test_neighbor_memory_is_payload(self):
        t = Transfer(src=(1, 1), dst=(2, 1), bits=1024, kind=TransferKind.NEIGHBOR)
        assert t.memory_bits == 1024

    def test_cycles_property(self):
        t = Transfer(src=None, dst=(0, 0), bits=256, kind=TransferKind.STREAM_FORWARD)
        assert t.cycles == transfer_cycles(TransferKind.STREAM_FORWARD, 256)


class TestClassifyMove:
    @pytest.fixture
    def array(self):
        return AIEArray()

    def test_vertical_neighbor(self, array):
        assert (
            classify_move(array, producer_memory=(2, 10), consumer_core=(3, 10))
            is TransferKind.NEIGHBOR
        )

    def test_parity_aligned_horizontal(self, array):
        # Odd-row consumer reaches its east neighbour's memory.
        assert (
            classify_move(array, producer_memory=(3, 11), consumer_core=(3, 10))
            is TransferKind.NEIGHBOR
        )

    def test_parity_misaligned_needs_dma(self, array):
        assert (
            classify_move(array, producer_memory=(3, 9), consumer_core=(3, 10))
            is TransferKind.DMA
        )

    def test_long_distance_needs_dma(self, array):
        assert (
            classify_move(array, producer_memory=(0, 0), consumer_core=(7, 49))
            is TransferKind.DMA
        )

    def test_rejects_outside_coordinates(self, array):
        with pytest.raises(CommunicationError):
            classify_move(array, producer_memory=(9, 0), consumer_core=(0, 0))
