"""Unit tests for the tile memory model and allocator."""

import pytest

from repro.errors import MemoryAllocationError
from repro.units import kib
from repro.versal.memory import MemoryBank, MemoryModule


class TestMemoryBank:
    def test_capacity_default(self):
        bank = MemoryBank()
        assert bank.capacity_bits == kib(8)
        assert bank.free_bits == bank.capacity_bits

    def test_allocate_and_release(self):
        bank = MemoryBank()
        bank.allocate(1000)
        assert bank.used_bits == 1000
        bank.release(400)
        assert bank.used_bits == 600

    def test_overflow(self):
        bank = MemoryBank()
        with pytest.raises(MemoryAllocationError):
            bank.allocate(bank.capacity_bits + 1)

    def test_negative_allocation(self):
        with pytest.raises(MemoryAllocationError):
            MemoryBank().allocate(-1)

    def test_over_release(self):
        bank = MemoryBank()
        bank.allocate(100)
        with pytest.raises(MemoryAllocationError):
            bank.release(200)


class TestMemoryModule:
    def test_total_capacity_is_32kb(self):
        module = MemoryModule()
        assert module.capacity_bits == 4 * kib(8)

    def test_first_fit_placement(self):
        module = MemoryModule()
        bank0 = module.allocate("a", kib(8))  # fills bank 0
        bank1 = module.allocate("b", 100)  # must go to bank 1
        assert bank0 == 0
        assert bank1 == 1

    def test_buffers_never_span_banks(self):
        module = MemoryModule()
        # More than one bank of total free space, but no single bank fits.
        with pytest.raises(MemoryAllocationError):
            module.allocate("big", kib(8) + 1)

    def test_duplicate_names_rejected(self):
        module = MemoryModule()
        module.allocate("x", 10)
        with pytest.raises(MemoryAllocationError):
            module.allocate("x", 10)

    def test_release_frees_space(self):
        module = MemoryModule()
        module.allocate("x", kib(8))
        module.release("x")
        assert module.used_bits == 0
        module.allocate("y", kib(8))  # fits again

    def test_release_unknown(self):
        with pytest.raises(MemoryAllocationError):
            MemoryModule().release("ghost")

    def test_bank_of(self):
        module = MemoryModule()
        module.allocate("x", 10)
        assert module.bank_of("x") == 0
        assert module.bank_of("missing") is None

    def test_buffer_names_order(self):
        module = MemoryModule()
        module.allocate("first", 10)
        module.allocate("second", 10)
        assert module.buffer_names() == ["first", "second"]

    def test_reset(self):
        module = MemoryModule()
        module.allocate("x", 500)
        module.reset()
        assert module.used_bits == 0
        assert module.buffer_names() == []

    def test_column_pair_fits_one_tile(self):
        # A 512-element fp32 column pair fits the paper's 32 KB tile:
        # two input columns + two outputs.
        module = MemoryModule()
        column_bits = 512 * 32
        for name in ("in_left", "in_right", "out_left", "out_right"):
            module.allocate(name, column_bits)
        assert module.free_bits >= 0
