"""Unit tests for the device description."""

import pytest

from repro.versal.device import VCK190, DeviceSpec


class TestVCK190:
    def test_array_geometry(self):
        assert VCK190.aie_rows == 8
        assert VCK190.aie_cols == 50
        assert VCK190.n_tiles == 400

    def test_tile_memory_is_32kb(self):
        assert VCK190.tile_memory_bits == 4 * 8 * 1024 * 8

    def test_aie_clock(self):
        assert VCK190.aie_frequency_hz == pytest.approx(1.25e9)

    def test_plio_bandwidths_match_paper(self):
        assert VCK190.plio_aie_to_pl_bits_per_s == pytest.approx(24e9 * 8)
        assert VCK190.plio_pl_to_aie_bits_per_s == pytest.approx(32e9 * 8)

    def test_budgets_dict(self):
        budgets = VCK190.budgets()
        assert budgets["AIE"] == 400
        assert budgets["PLIO"] == 156
        assert budgets["URAM"] == 463
        assert budgets["BRAM"] == 967

    def test_uram_capacity(self):
        # URAM blocks are 288 Kb.
        assert VCK190.uram_bits == 288 * 1024

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            VCK190.max_aie = 500

    def test_custom_device(self):
        small = DeviceSpec(
            name="test",
            aie_rows=4,
            aie_cols=10,
            aie_frequency_hz=1e9,
            banks_per_tile=2,
            bank_bits=1024,
            plio_aie_to_pl_bits_per_s=1e9,
            plio_pl_to_aie_bits_per_s=1e9,
            plio_width_bits=64,
            max_aie=40,
            max_plio=12,
            max_bram=100,
            max_uram=50,
            uram_bits=288 * 1024,
            bram_bits=36 * 1024,
            macs_per_cycle=4,
            pl_frequency_range_hz=(1e8, 5e8),
            ddr_bandwidth_bits_per_s=1e10,
        )
        assert small.n_tiles == 40
        assert small.tile_memory_bits == 2048
