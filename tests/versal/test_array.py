"""Unit tests for the AIE array topology."""

import pytest

from repro.errors import HardwareModelError
from repro.versal.array import AIEArray
from repro.versal.tile import TileKind


@pytest.fixture
def array():
    return AIEArray()


class TestArrayBasics:
    def test_default_geometry_is_vck190(self, array):
        assert array.rows == 8
        assert array.cols == 50
        assert array.n_tiles == 400

    def test_custom_geometry(self):
        small = AIEArray(rows=3, cols=4)
        assert small.n_tiles == 12

    def test_invalid_geometry(self):
        with pytest.raises(HardwareModelError):
            AIEArray(rows=0, cols=5)

    def test_tile_lookup(self, array):
        tile = array.tile(3, 7)
        assert tile.coord == (3, 7)

    def test_tile_out_of_range(self, array):
        with pytest.raises(HardwareModelError):
            array.tile(8, 0)
        with pytest.raises(HardwareModelError):
            array.tile(0, 50)

    def test_contains(self, array):
        assert (0, 0) in array
        assert (7, 49) in array
        assert (8, 0) not in array

    def test_iteration_covers_all_tiles(self, array):
        assert sum(1 for _ in array) == 400


class TestNeighborAccess:
    def test_vertical_always_accessible(self, array):
        assert array.is_neighbor_accessible((3, 10), (2, 10))
        assert array.is_neighbor_accessible((3, 10), (4, 10))

    def test_horizontal_follows_parity(self, array):
        # Even-row core reaches its west neighbour's memory.
        assert array.is_neighbor_accessible((2, 10), (2, 9))
        assert not array.is_neighbor_accessible((2, 10), (2, 11))
        # Odd-row core reaches its east neighbour's memory.
        assert array.is_neighbor_accessible((3, 10), (3, 11))
        assert not array.is_neighbor_accessible((3, 10), (3, 9))

    def test_diagonals_not_accessible(self, array):
        assert not array.is_neighbor_accessible((3, 10), (2, 9))
        assert not array.is_neighbor_accessible((3, 10), (4, 11))

    def test_distance_two_not_accessible(self, array):
        assert not array.is_neighbor_accessible((3, 10), (3, 8))
        assert not array.is_neighbor_accessible((3, 10), (5, 10))

    def test_outside_coordinates(self, array):
        assert not array.is_neighbor_accessible((0, 0), (-1, 0))

    def test_accessible_memories_sorted(self, array):
        mems = array.accessible_memories((3, 10))
        assert mems == sorted(mems)
        assert (3, 10) in mems


class TestAssignments:
    def test_assign_and_count(self, array):
        array.assign((1, 1), TileKind.ORTH)
        array.assign((1, 2), TileKind.ORTH)
        array.assign((0, 0), TileKind.MEM)
        assert array.count_of_kind(TileKind.ORTH) == 2
        assert array.count_of_kind(TileKind.MEM) == 1
        assert array.utilization() == pytest.approx(3 / 400)

    def test_double_assignment_rejected(self, array):
        array.assign((1, 1), TileKind.ORTH)
        with pytest.raises(HardwareModelError):
            array.assign((1, 1), TileKind.NORM)

    def test_tiles_of_kind_row_major(self, array):
        array.assign((2, 5), TileKind.NORM)
        array.assign((1, 9), TileKind.NORM)
        coords = [t.coord for t in array.tiles_of_kind(TileKind.NORM)]
        assert coords == [(1, 9), (2, 5)]

    def test_clear_assignments(self, array):
        array.assign((1, 1), TileKind.ORTH)
        array.tile(1, 1).memory.allocate("buf", 1024)
        array.clear_assignments()
        assert array.count_of_kind(TileKind.ORTH) == 0
        assert array.tile(1, 1).memory.used_bits == 0
