"""Unit tests for the AIE kernel cycle models."""

import pytest

from repro.errors import ConfigurationError
from repro.versal.device import VCK190
from repro.versal.kernels import (
    KernelTimings,
    norm_kernel_cycles,
    orth_kernel_cycles,
)


class TestOrthKernel:
    def test_monotonic_in_column_length(self):
        previous = 0.0
        for m in (8, 64, 128, 512, 1024):
            cycles = orth_kernel_cycles(m)
            assert cycles > previous
            previous = cycles

    def test_asymptotically_linear(self):
        # 7 vector passes of m/8 elements dominate for large m.
        c1 = orth_kernel_cycles(1024)
        c2 = orth_kernel_cycles(2048)
        growth = (c2 - c1) / (7 * 128)
        assert growth == pytest.approx(1.0, rel=0.01)

    def test_fixed_overhead_visible_at_small_m(self):
        # For tiny columns the scalar rotation math dominates.
        assert orth_kernel_cycles(1) > 80

    def test_rejects_invalid_m(self):
        with pytest.raises(ConfigurationError):
            orth_kernel_cycles(0)


class TestNormKernel:
    def test_scales_with_columns(self):
        one = norm_kernel_cycles(128, 1)
        four = norm_kernel_cycles(128, 4)
        per_column = one - 40  # strip the fixed invocation overhead
        assert four == pytest.approx(40 + 4 * per_column)

    def test_cheaper_than_orth(self):
        # Normalization is a single pass; orthogonalization is seven.
        assert norm_kernel_cycles(512, 1) < orth_kernel_cycles(512)

    def test_rejects_invalid_args(self):
        with pytest.raises(ConfigurationError):
            norm_kernel_cycles(0, 1)
        with pytest.raises(ConfigurationError):
            norm_kernel_cycles(128, 0)


class TestKernelTimings:
    def test_seconds_at_aie_clock(self):
        timings = KernelTimings(m=128)
        expected = orth_kernel_cycles(128) / VCK190.aie_frequency_hz
        assert timings.t_orth == pytest.approx(expected)

    def test_orth_kernel_is_sub_microsecond_for_128(self):
        # Sanity anchor for the Table IV calibration: one 128-element
        # pair rotation is ~0.16 us at 1.25 GHz.
        t = KernelTimings(m=128).t_orth
        assert 0.05e-6 < t < 0.5e-6

    def test_norm_batch_time(self):
        timings = KernelTimings(m=256)
        assert timings.t_norm(8) > timings.t_norm_column
