"""Tests for the AIE vector-ISA model and the assembled orth kernel."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.linalg.rotations import rotate_pair
from repro.versal.aie_isa import (
    LANES,
    AIECoreModel,
    Instruction,
    build_orth_kernel,
    run_orth_kernel,
)
from repro.versal.kernels import orth_kernel_cycles


class TestCoreModel:
    def test_vector_load_store_roundtrip(self):
        data = np.arange(8, dtype=float)
        core = AIECoreModel(memory={"src": data, "dst": np.zeros(8)})
        program = [
            Instruction("vload", "v0", ("src", 0)),
            Instruction("vstore", "mem", ("dst", "v0", 0)),
        ]
        result = core.execute(program)
        assert np.array_equal(result.memory["dst"], data)
        # VLIW bundling: the load dual-issues with the store.
        assert result.cycles == 1

    def test_vfma_semantics(self):
        core = AIECoreModel(
            memory={"a": np.full(8, 2.0), "b": np.full(8, 3.0)}
        )
        program = [
            Instruction("smov", "zero", (0.0,)),
            Instruction("vbcast", "acc", ("zero",)),
            Instruction("vload", "va", ("a", 0)),
            Instruction("vload", "vb", ("b", 0)),
            Instruction("vfma", "acc", ("acc", "va", "vb")),
            Instruction("vreduce", "out", ("acc",)),
        ]
        result = core.execute(program)
        assert result.scalar_registers["out"] == pytest.approx(48.0)

    def test_scalar_ops(self):
        core = AIECoreModel()
        program = [
            Instruction("smov", "x", (9.0,)),
            Instruction("ssqrt", "r", ("x",)),
            Instruction("sdiv", "d", (1.0, "r")),
            Instruction("ssign", "sg", (-5.0,)),
        ]
        result = core.execute(program)
        assert result.scalar_registers["r"] == pytest.approx(3.0)
        assert result.scalar_registers["d"] == pytest.approx(1 / 3)
        assert result.scalar_registers["sg"] == -1.0

    def test_unknown_opcode(self):
        with pytest.raises(SimulationError):
            AIECoreModel().execute([Instruction("vxor", "v0", ())])

    def test_unset_register(self):
        with pytest.raises(SimulationError):
            AIECoreModel().execute([Instruction("vreduce", "x", ("v9",))])

    def test_out_of_bounds_access(self):
        core = AIECoreModel(memory={"buf": np.zeros(8)})
        with pytest.raises(SimulationError):
            core.execute([Instruction("vload", "v0", ("buf", 4))])

    def test_divide_by_zero(self):
        with pytest.raises(SimulationError):
            AIECoreModel().execute([Instruction("sdiv", "x", (1.0, 0.0))])

    def test_overhead_cycles(self):
        core = AIECoreModel(overhead_cycles=50)
        assert core.execute([]).cycles == 50


class TestOrthKernel:
    @pytest.mark.parametrize("m", [8, 32, 128])
    def test_matches_reference_rotation(self, rng, m):
        ai = rng.standard_normal(m)
        aj = rng.standard_normal(m)
        bi, bj, _ = run_orth_kernel(ai, aj)
        ref_bi, ref_bj, _ = rotate_pair(ai, aj)
        assert np.allclose(bi, ref_bi, atol=1e-12)
        assert np.allclose(bj, ref_bj, atol=1e-12)

    def test_output_pair_is_orthogonal(self, rng):
        ai = rng.standard_normal(64)
        aj = rng.standard_normal(64)
        bi, bj, _ = run_orth_kernel(ai, aj)
        scale = np.linalg.norm(bi) * np.linalg.norm(bj)
        assert abs(bi @ bj) / scale < 1e-12

    @pytest.mark.parametrize("m", [64, 128, 256, 512])
    def test_cycle_count_matches_closed_form(self, m, rng):
        # The closed-form cycle model's constants are *derived from*
        # this instruction-level schedule: for vector-width multiples
        # the two must agree exactly.
        ai = rng.standard_normal(m)
        aj = rng.standard_normal(m)
        _, _, result = run_orth_kernel(ai, aj, overhead_cycles=55)
        formula = orth_kernel_cycles(m)
        assert result.cycles == formula, (m, result.cycles, formula)

    def test_cycles_linear_in_m(self, rng):
        def cycles(m):
            ai = rng.standard_normal(m)
            aj = rng.standard_normal(m)
            return run_orth_kernel(ai, aj)[2].cycles

        c128, c256 = cycles(128), cycles(256)
        c512 = cycles(512)
        # Per-chunk slope is constant.
        assert (c512 - c256) == pytest.approx(2 * (c256 - c128), rel=0.01)

    def test_rejects_bad_lengths(self):
        with pytest.raises(SimulationError):
            build_orth_kernel(12)
        with pytest.raises(SimulationError):
            build_orth_kernel(0)

    def test_rejects_mismatched_columns(self, rng):
        with pytest.raises(SimulationError):
            run_orth_kernel(rng.standard_normal(8), rng.standard_normal(16))

    def test_instruction_count_structure(self):
        # 3 + 1 setup, 5 per chunk (pass 1), 3 reductions, 20 scalar,
        # 3 broadcasts, 8 per chunk (pass 2).
        m = 64
        chunks = m // LANES
        program = build_orth_kernel(m)
        expected = 4 + 5 * chunks + 3 + 20 + 3 + 8 * chunks
        assert len(program) == expected


class TestParseProgram:
    def test_assemble_and_execute_dot_product(self):
        from repro.versal.aie_isa import parse_program

        text = """
        # dot product of two 8-element buffers
        smov   zero, 0.0
        vbcast vacc, zero
        vload  va, a, 0
        vload  vb, b, 0
        vfma   vacc, vacc, va, vb
        vreduce out, vacc
        """
        program = parse_program(text)
        core = AIECoreModel(
            memory={"a": np.full(8, 2.0), "b": np.full(8, 3.0)}
        )
        result = core.execute(program)
        assert result.scalar_registers["out"] == pytest.approx(48.0)

    def test_matches_builder_output(self):
        from repro.versal.aie_isa import parse_program

        text = "vload v0, buf, 8"
        program = parse_program(text)
        assert program == [Instruction("vload", "v0", ("buf", 8))]

    def test_immediates_parsed_by_type(self):
        from repro.versal.aie_isa import parse_program

        program = parse_program("sdiv x, 1.0, y")
        assert program[0].sources == (1.0, "y")

    def test_store_form(self):
        from repro.versal.aie_isa import parse_program

        program = parse_program("vstore mem, dst, v1, 0")
        assert program[0].sources == ("dst", "v1", 0)

    def test_unknown_opcode_rejected(self):
        from repro.versal.aie_isa import parse_program

        with pytest.raises(SimulationError, match="unknown opcode"):
            parse_program("vxor v0, v1, v2")

    def test_missing_operands_rejected(self):
        from repro.versal.aie_isa import parse_program

        with pytest.raises(SimulationError, match="missing operands"):
            parse_program("vload")

    def test_comments_and_blanks_skipped(self):
        from repro.versal.aie_isa import parse_program

        assert parse_program("# nothing\n\n  # more\n") == []
