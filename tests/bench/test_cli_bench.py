"""Tests for the ``heterosvd bench`` subcommand."""

import json

from repro.bench import load_report, report_path
from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench", "--suite", "solver"])
        assert args.suite == "solver"
        assert args.size is None
        assert args.repeat == 1
        assert args.seed == 0
        assert args.out == "."
        assert args.threshold == 0.25
        assert args.baseline is None
        assert not args.no_compare

    def test_flags_parse(self):
        args = build_parser().parse_args([
            "bench", "--suite", "dse", "--size", "32", "--repeat", "2",
            "--seed", "9", "--out", "/tmp/x", "--threshold", "0.5",
            "--baseline", "old.json", "--no-compare",
        ])
        assert (args.size, args.repeat, args.seed) == (32, 2, 9)
        assert args.out == "/tmp/x"
        assert args.threshold == 0.5
        assert args.baseline == "old.json"
        assert args.no_compare


class TestListAndCheck:
    def test_list_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("solver", "dse", "scheduler", "batch"):
            assert name in out

    def test_check_valid_report(self, tmp_path, capsys):
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        path = report_path(str(tmp_path), "scheduler")
        assert main(["bench", "--check", path]) == 0
        assert "valid BENCH report" in capsys.readouterr().out

    def test_check_invalid_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{}")
        assert main(["bench", "--check", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_suite_is_usage_error(self, capsys):
        assert main(["bench"]) == 1
        assert "--suite is required" in capsys.readouterr().err

    def test_unknown_suite_fails(self, capsys):
        assert main(["bench", "--suite", "quantum"]) == 1
        assert "unknown suite" in capsys.readouterr().err


class TestRunAndCompare:
    def test_writes_schema_valid_report(self, tmp_path, capsys):
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(tmp_path), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "no baseline report" in out
        report = load_report(report_path(str(tmp_path), "scheduler"))
        assert report.suite == "scheduler"
        assert report.seed == 3
        assert report.case("schedule_lpt_16") is not None

    def test_solver_smoke_reports_speedup(self, tmp_path, capsys):
        assert main(["bench", "--suite", "solver", "--size", "16",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup hestenes_16" in out

    def test_second_run_compares_against_first(self, tmp_path, capsys):
        # Huge threshold: sub-millisecond cases are pure timing noise;
        # this test pins that the comparison runs, not its verdict.
        args = ["bench", "--suite", "scheduler", "--size", "16",
                "--out", str(tmp_path), "--threshold", "1000"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "schedule_lpt_16" in capsys.readouterr().out

    def test_regression_breach_exits_3(self, tmp_path, capsys):
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(tmp_path)]) == 0
        path = report_path(str(tmp_path), "scheduler")
        with open(path) as handle:
            doc = json.load(handle)
        # Shrink the baseline times so the next run must regress.
        for result in doc["results"]:
            result["wall_times_s"] = [t / 1000.0
                                      for t in result["wall_times_s"]]
            result["wall_time_s"] = min(result["wall_times_s"])
        with open(path, "w") as handle:
            json.dump(doc, handle)
        capsys.readouterr()
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(tmp_path)]) == 3
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "threshold breached" in captured.err

    def test_no_compare_skips_baseline(self, tmp_path, capsys):
        args = ["bench", "--suite", "scheduler", "--size", "16",
                "--out", str(tmp_path), "--no-compare"]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" not in out

    def test_explicit_baseline_flag(self, tmp_path, capsys):
        first = tmp_path / "first"
        second = tmp_path / "second"
        first.mkdir()
        second.mkdir()
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(first)]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--suite", "scheduler", "--size", "16",
            "--out", str(second), "--threshold", "1000",
            "--baseline", report_path(str(first), "scheduler"),
        ]) == 0
        assert "schedule_lpt_16" in capsys.readouterr().out

    def test_corrupt_baseline_fails_cleanly(self, tmp_path, capsys):
        path = report_path(str(tmp_path), "scheduler")
        with open(path, "w") as handle:
            handle.write("{}")
        assert main(["bench", "--suite", "scheduler", "--size", "16",
                     "--out", str(tmp_path)]) == 1
        assert "baseline" in capsys.readouterr().err
