"""Tests for the repro.bench regression harness."""
