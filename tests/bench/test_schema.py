"""Schema validation and round-trip tests for BENCH_<suite>.json."""

import copy
import json

import pytest

from repro.bench import SCHEMA_VERSION, validate_report
from repro.errors import BenchmarkError


def make_doc():
    """A minimal valid schema-v1 document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "solver",
        "created_unix": 1754000000.0,
        "machine": {
            "hostname": "host-1",
            "platform": "Linux-test",
            "python": "3.11.0",
            "numpy": "1.26.0",
            "cpu_count": 4,
        },
        "seed": 0,
        "model_version": "1",
        "results": [
            {
                "name": "hestenes_vectorized_64",
                "repeats": 2,
                "wall_time_s": 0.5,
                "wall_times_s": [0.6, 0.5],
                "metrics": {"sweeps": 7, "strategy": "vectorized"},
            }
        ],
    }


class TestValidDocuments:
    def test_minimal_document_validates(self):
        doc = make_doc()
        assert validate_report(doc) is doc

    def test_json_round_trip_validates(self):
        rebuilt = json.loads(json.dumps(make_doc()))
        validate_report(rebuilt)

    def test_integer_times_accepted(self):
        doc = make_doc()
        doc["results"][0]["wall_times_s"] = [1, 2]
        doc["results"][0]["wall_time_s"] = 1
        validate_report(doc)

    def test_empty_metrics_accepted(self):
        doc = make_doc()
        doc["results"][0]["metrics"] = {}
        validate_report(doc)


class TestInvalidDocuments:
    @pytest.mark.parametrize("key", [
        "schema_version", "suite", "created_unix", "machine", "seed",
        "model_version", "results",
    ])
    def test_missing_top_level_key(self, key):
        doc = make_doc()
        del doc[key]
        with pytest.raises(BenchmarkError, match=key):
            validate_report(doc)

    def test_non_object_top_level(self):
        with pytest.raises(BenchmarkError):
            validate_report([make_doc()])

    def test_wrong_schema_version(self):
        doc = make_doc()
        doc["schema_version"] = "99"
        with pytest.raises(BenchmarkError, match="schema_version"):
            validate_report(doc)

    def test_empty_suite_name(self):
        doc = make_doc()
        doc["suite"] = ""
        with pytest.raises(BenchmarkError, match="suite"):
            validate_report(doc)

    @pytest.mark.parametrize("field", [
        "hostname", "platform", "python", "numpy", "cpu_count",
    ])
    def test_missing_machine_field(self, field):
        doc = make_doc()
        del doc["machine"][field]
        with pytest.raises(BenchmarkError, match=field):
            validate_report(doc)

    def test_machine_field_type(self):
        doc = make_doc()
        doc["machine"]["cpu_count"] = "four"
        with pytest.raises(BenchmarkError, match="cpu_count"):
            validate_report(doc)

    def test_empty_results(self):
        doc = make_doc()
        doc["results"] = []
        with pytest.raises(BenchmarkError, match="results"):
            validate_report(doc)

    def test_duplicate_case_names(self):
        doc = make_doc()
        doc["results"].append(copy.deepcopy(doc["results"][0]))
        with pytest.raises(BenchmarkError, match="duplicate"):
            validate_report(doc)

    def test_empty_case_name(self):
        doc = make_doc()
        doc["results"][0]["name"] = ""
        with pytest.raises(BenchmarkError, match="name"):
            validate_report(doc)

    def test_repeats_mismatch(self):
        doc = make_doc()
        doc["results"][0]["repeats"] = 3
        with pytest.raises(BenchmarkError, match="repeats"):
            validate_report(doc)

    def test_negative_wall_time(self):
        doc = make_doc()
        doc["results"][0]["wall_times_s"] = [-0.1, 0.5]
        with pytest.raises(BenchmarkError, match="non-negative"):
            validate_report(doc)

    def test_boolean_wall_time_rejected(self):
        doc = make_doc()
        doc["results"][0]["wall_times_s"] = [True, 0.5]
        with pytest.raises(BenchmarkError, match="non-negative"):
            validate_report(doc)

    def test_headline_not_minimum(self):
        doc = make_doc()
        doc["results"][0]["wall_time_s"] = 0.6
        with pytest.raises(BenchmarkError, match="minimum"):
            validate_report(doc)

    def test_metric_value_type(self):
        doc = make_doc()
        doc["results"][0]["metrics"]["bad"] = [1, 2]
        with pytest.raises(BenchmarkError, match="bad"):
            validate_report(doc)

    def test_boolean_metric_rejected(self):
        doc = make_doc()
        doc["results"][0]["metrics"]["flag"] = True
        with pytest.raises(BenchmarkError, match="flag"):
            validate_report(doc)
