"""Tests for the benchmark runner: timing, reports, comparisons."""

import json

import pytest

from repro.bench import (
    BenchCase,
    BenchReport,
    CaseResult,
    build_suite,
    compare_reports,
    load_report,
    machine_stamp,
    report_path,
    run_case,
    run_suite,
    strategy_speedups,
    suite_names,
    write_report,
)
from repro.errors import BenchmarkError


def tiny_case(name="noop", metrics=None):
    return BenchCase(name, lambda seed: dict(metrics or {"seed": seed}))


def make_report(times, suite="solver", hostname=None,
                model_version="1"):
    """A report with one case per (name, wall_time) entry."""
    machine = machine_stamp()
    if hostname is not None:
        machine["hostname"] = hostname
    return BenchReport(
        suite=suite,
        seed=0,
        results=[
            CaseResult(name=name, wall_times_s=[t])
            for name, t in times.items()
        ],
        machine=machine,
        created_unix=1754000000.0,
        model_version=model_version,
    )


class TestRunSuite:
    def test_runs_cases_and_stamps(self):
        report = run_suite("demo", [tiny_case("a"), tiny_case("b")],
                           seed=7, repeats=2)
        assert report.suite == "demo"
        assert report.seed == 7
        assert [r.name for r in report.results] == ["a", "b"]
        assert all(r.repeats == 2 for r in report.results)
        assert report.results[0].metrics["seed"] == 7
        assert report.machine["cpu_count"] >= 1

    def test_wall_time_is_minimum(self):
        result = run_case(tiny_case(), seed=0, repeats=3)
        assert result.wall_time_s == min(result.wall_times_s)

    def test_empty_suite_raises(self):
        with pytest.raises(BenchmarkError, match="no cases"):
            run_suite("empty", [])

    def test_zero_repeats_raises(self):
        with pytest.raises(BenchmarkError, match="repeats"):
            run_case(tiny_case(), seed=0, repeats=0)

    def test_progress_callback(self):
        seen = []
        run_suite("demo", [tiny_case("a")],
                  progress=lambda name, result: seen.append(name))
        assert seen == ["a"]

    def test_obs_disabled_after_run(self):
        from repro import obs

        run_suite("demo", [tiny_case()])
        assert not obs.is_enabled()


class TestReportIO:
    def test_write_load_round_trip(self, tmp_path):
        report = run_suite("demo", [tiny_case("a")])
        path = write_report(report, report_path(str(tmp_path), "demo"))
        assert path.endswith("BENCH_demo.json")
        loaded = load_report(path)
        assert loaded.suite == "demo"
        assert loaded.case("a").wall_times_s == \
            report.case("a").wall_times_s
        assert loaded.to_dict() == report.to_dict()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_report(str(tmp_path / "BENCH_none.json"))

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(str(path))

    def test_load_schema_violation_raises(self, tmp_path):
        report = run_suite("demo", [tiny_case("a")])
        doc = report.to_dict()
        del doc["machine"]
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(BenchmarkError, match="machine"):
            load_report(str(path))


class TestCompareReports:
    def test_steady_within_threshold(self):
        baseline = make_report({"a": 1.0})
        current = make_report({"a": 1.1})
        outcome = compare_reports(baseline, current, threshold=0.25)
        assert not outcome.breached
        assert [c.name for c in outcome.steady] == ["a"]

    def test_threshold_breach(self):
        baseline = make_report({"a": 1.0, "b": 1.0})
        current = make_report({"a": 1.5, "b": 1.0})
        outcome = compare_reports(baseline, current, threshold=0.25)
        assert outcome.breached
        assert [c.name for c in outcome.regressions] == ["a"]
        assert outcome.regressions[0].ratio == pytest.approx(1.5)
        assert "REGRESSION a" in outcome.describe()

    def test_improvement_detected(self):
        baseline = make_report({"a": 1.0})
        current = make_report({"a": 0.4})
        outcome = compare_reports(baseline, current, threshold=0.25)
        assert [c.name for c in outcome.improvements] == ["a"]
        assert not outcome.breached

    def test_new_and_missing_cases_never_breach(self):
        baseline = make_report({"old": 1.0})
        current = make_report({"new": 1.0})
        outcome = compare_reports(baseline, current)
        assert outcome.new_cases == ["new"]
        assert outcome.missing_cases == ["old"]
        assert not outcome.breached
        assert "no baseline" in outcome.describe()

    def test_different_machine_is_advisory(self):
        baseline = make_report({"a": 1.0}, hostname="other-host")
        current = make_report({"a": 10.0})
        outcome = compare_reports(baseline, current, threshold=0.25)
        assert not outcome.comparable
        assert outcome.regressions  # still computed ...
        assert not outcome.breached  # ... but never a verdict
        assert "advisory" in outcome.describe()

    def test_different_model_version_is_advisory(self):
        baseline = make_report({"a": 1.0}, model_version="0")
        current = make_report({"a": 10.0})
        assert not compare_reports(baseline, current).breached

    def test_suite_mismatch_raises(self):
        with pytest.raises(BenchmarkError, match="compare"):
            compare_reports(make_report({"a": 1.0}, suite="solver"),
                            make_report({"a": 1.0}, suite="dse"))

    def test_non_positive_threshold_raises(self):
        report = make_report({"a": 1.0})
        with pytest.raises(BenchmarkError, match="threshold"):
            compare_reports(report, report, threshold=0.0)

    def test_zero_baseline_time(self):
        baseline = make_report({"a": 0.0})
        current = make_report({"a": 0.5})
        outcome = compare_reports(baseline, current)
        assert outcome.regressions[0].ratio == float("inf")


class TestSuiteRegistry:
    def test_registered_names(self):
        assert suite_names() == ["batch", "chaos", "dse", "dse_sharded",
                                  "scheduler", "serve", "solver",
                                  "workloads"]

    def test_unknown_suite_raises(self):
        with pytest.raises(BenchmarkError, match="unknown suite"):
            build_suite("quantum")

    def test_too_small_size_raises(self):
        with pytest.raises(BenchmarkError, match="size"):
            build_suite("solver", 4)

    def test_solver_suite_case_names(self):
        names = [case.name for case in build_suite("solver", 16)]
        assert "hestenes_scalar_16" in names
        assert "hestenes_vectorized_16" in names
        assert "block_scalar_16" in names
        assert "block_vectorized_16" in names

    def test_solver_suite_runs_smoke(self):
        report = run_suite("solver", build_suite("solver", 16), seed=1)
        scalar = report.case("hestenes_scalar_16")
        vectorized = report.case("hestenes_vectorized_16")
        # Identical rotations -> identical sweep counts.
        assert scalar.metrics["sweeps"] == vectorized.metrics["sweeps"]

    def test_scheduler_suite_runs_smoke(self):
        report = run_suite("scheduler",
                           build_suite("scheduler", 16), seed=1)
        lpt = report.case("schedule_lpt_16")
        assert lpt.metrics["tasks"] == 16
        assert lpt.metrics["obs.schedule.cost_evaluations"] >= 1

    def test_workloads_suite_case_names(self):
        names = [case.name for case in build_suite("workloads", 16)]
        assert names == ["streaming_fold_16", "tsqr_16", "dnc_16",
                         "block_square_16"]

    def test_workloads_suite_runs_smoke(self):
        report = run_suite("workloads",
                           build_suite("workloads", 16), seed=1)
        # The dense-core legs obey the solver accuracy contract; the
        # streaming leg tracks a truncated rank so its deviation is
        # truncation-dominated but must stay bounded by the tracker's
        # own error estimate (relative to the leading singular value).
        for name in ("tsqr_16", "dnc_16", "block_square_16"):
            assert report.case(name).metrics["sigma_rel_err"] < 1e-8
        streaming = report.case("streaming_fold_16").metrics
        assert streaming["updates"] >= 2
        assert streaming["sigma_rel_err"] < 1.0
        assert streaming["error_bound"] >= 0.0


class TestStrategySpeedups:
    def test_pairs_extracted(self):
        report = make_report({
            "hestenes_scalar_64": 3.0,
            "hestenes_vectorized_64": 1.0,
            "solve_batch_vectorized_64": 0.5,
        })
        assert strategy_speedups(report) == {
            "hestenes_64": pytest.approx(3.0)
        }

    def test_no_pairs_yields_empty(self):
        assert strategy_speedups(make_report({"a": 1.0})) == {}
