"""Watchdog unit tests and the worker-stall detection path."""

import time

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.guard import Watchdog


class TestWatchdog:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigurationError):
            Watchdog(0.0)
        with pytest.raises(ConfigurationError):
            Watchdog(-1.0)

    def test_fed_watchdog_does_not_fire(self):
        with Watchdog(timeout_s=0.5) as dog:
            for _ in range(5):
                time.sleep(0.02)
                dog.feed()
            assert not dog.fired

    def test_starved_watchdog_fires(self):
        fired_callbacks = []
        with Watchdog(timeout_s=0.05,
                      on_stall=lambda: fired_callbacks.append(1)) as dog:
            deadline = time.monotonic() + 2.0
            while not dog.fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert dog.fired
        assert fired_callbacks == [1]

    def test_broken_callback_does_not_kill_detection(self):
        def boom():
            raise RuntimeError("broken callback")

        with Watchdog(timeout_s=0.05, on_stall=boom) as dog:
            deadline = time.monotonic() + 2.0
            while not dog.fired and time.monotonic() < deadline:
                time.sleep(0.01)
            assert dog.fired

    def test_poll_interval_scales_with_timeout(self):
        assert Watchdog(100.0).poll_interval == 0.25
        assert Watchdog(0.02).poll_interval == 0.01
        assert Watchdog(0.4).poll_interval == pytest.approx(0.1)

    def test_start_is_idempotent_and_stop_joins(self):
        dog = Watchdog(timeout_s=1.0)
        assert dog.start() is dog
        assert dog.start() is dog
        dog.stop()
        dog.stop()


class TestRunnerStallDetection:
    def test_stall_timeout_must_be_positive(self):
        from repro.exec.parallel import ParallelRunner

        with pytest.raises(ConfigurationError):
            ParallelRunner(jobs=1, stall_timeout=0.0)

    def test_injected_stall_is_detected_and_retryable(self):
        """The exec.worker_stall fault site's detection path: a stalled
        worker fires the watchdog, which cancels the map with a
        retryable ParallelExecutionError."""
        from repro.exec.parallel import ParallelRunner
        from repro.resilience import FaultPlan, FaultSpec

        runner = ParallelRunner(jobs=1, stall_timeout=0.05)
        plan = FaultPlan(seed=0, faults=[
            FaultSpec(site="exec.worker_stall", at=(0,), param=0.4),
        ])
        with plan.activate():
            with pytest.raises(ParallelExecutionError) as excinfo:
                runner.map(abs, [1, -2, 3])
        assert "stalled" in str(excinfo.value)
        assert excinfo.value.item_repr == "<watchdog>"

    def test_healthy_map_unaffected_by_watchdog(self):
        from repro.exec.parallel import ParallelRunner

        runner = ParallelRunner(jobs=1, stall_timeout=30.0)
        assert runner.map(abs, [1, -2, 3]) == [1, 2, 3]

    def test_pooled_map_with_watchdog(self):
        from repro.exec.parallel import ParallelRunner

        runner = ParallelRunner(jobs=2, stall_timeout=30.0)
        assert runner.map(abs, list(range(-8, 0))) == list(range(1, 9))[::-1]
