"""Unit tests for input validation and exact power-of-two pre-scaling."""

import numpy as np
import pytest

from repro.errors import InputValidationError, NumericalError
from repro.guard import (
    SCALE_MAX,
    SCALE_MIN,
    postscale_singular_values,
    prescale_matrix,
    validate_matrix,
)


class TestValidateMatrix:
    def test_healthy_matrix_passes(self, rng):
        a = rng.standard_normal((8, 6))
        health = validate_matrix(a)
        assert health.shape == (8, 6)
        assert health.zero_columns == 0
        assert health.scale_exponent == 0
        assert not health.denormals
        assert health.condition_estimate >= 1.0

    def test_nan_rejected_with_location(self):
        a = np.eye(4)
        a[2, 1] = np.nan
        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(a, name="input")
        assert excinfo.value.reason == "non-finite"
        assert excinfo.value.location == "input[2,1]"
        assert "1 NaN" in str(excinfo.value)

    def test_inf_rejected(self):
        a = np.eye(3)
        a[0, 0] = np.inf
        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(a)
        assert excinfo.value.reason == "non-finite"
        assert "1 Inf" in str(excinfo.value)

    def test_object_dtype_rejected(self):
        a = np.array([["a", "b"], ["c", "d"]], dtype=object)
        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(a)
        assert excinfo.value.reason == "dtype"

    def test_non_2d_rejected(self):
        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(np.zeros(4))
        assert excinfo.value.reason == "shape"
        health = validate_matrix(np.zeros(4), require_2d=False)
        assert health.shape == (4,)

    def test_empty_rejected(self):
        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(np.zeros((0, 3)))
        assert excinfo.value.reason == "empty"

    def test_zero_columns_counted_and_condition_inf(self, rng):
        a = rng.standard_normal((6, 4))
        a[:, 1] = 0.0
        health = validate_matrix(a)
        assert health.zero_columns == 1
        assert health.condition_estimate == float("inf")

    def test_condition_estimate_tracks_column_scaling(self, rng):
        a = rng.standard_normal((16, 4))
        a[:, 0] *= 1e8
        health = validate_matrix(a)
        assert health.condition_estimate > 1e6

    def test_extreme_scale_flagged(self):
        health = validate_matrix(np.eye(3) * 1e300)
        assert health.scale_exponent != 0
        # Applying the recommended exponent lands near unit scale.
        assert SCALE_MIN <= health.max_abs * 2.0 ** health.scale_exponent \
            <= SCALE_MAX

    def test_in_range_scale_not_flagged(self):
        assert validate_matrix(np.eye(3) * 1e-30).scale_exponent == 0

    def test_float32_denormals_flagged(self):
        a = np.eye(3, dtype=np.float32)
        a[0, 1] = np.float32(1e-40)  # denormal in float32
        health = validate_matrix(a)
        assert health.denormals

    def test_integer_matrix_passes(self):
        health = validate_matrix(np.eye(4, dtype=np.int64))
        assert health.dtype == "int64"

    def test_complex_nan_rejected(self):
        a = np.eye(3, dtype=complex)
        a[1, 1] = complex(np.nan, 0.0)
        with pytest.raises(InputValidationError):
            validate_matrix(a)

    def test_pickles(self):
        import pickle

        with pytest.raises(InputValidationError) as excinfo:
            validate_matrix(np.full((2, 2), np.nan))
        rebuilt = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(rebuilt, InputValidationError)
        assert rebuilt.reason == "non-finite"


class TestPrescale:
    @pytest.mark.parametrize("magnitude", [1e300, 1e-300, 1e290, 2.0 ** 600])
    def test_round_trip_is_exact(self, rng, magnitude):
        a = rng.standard_normal((6, 6)) * magnitude
        scaled, exponent = prescale_matrix(a)
        assert exponent != 0
        assert np.all(np.isfinite(scaled))
        assert SCALE_MIN <= np.abs(scaled).max() <= SCALE_MAX
        # ldexp is exact: undoing the scale reproduces the input bits.
        assert np.array_equal(np.ldexp(scaled, -exponent), a)

    def test_in_range_matrix_untouched(self, rng):
        a = rng.standard_normal((4, 4))
        scaled, exponent = prescale_matrix(a)
        assert exponent == 0
        assert scaled is not None and np.array_equal(scaled, a)

    def test_complex_prescale(self, rng):
        a = (rng.standard_normal((4, 4))
             + 1j * rng.standard_normal((4, 4))) * 1e300
        scaled, exponent = prescale_matrix(a)
        assert exponent != 0
        assert np.all(np.isfinite(scaled.real))
        assert np.all(np.isfinite(scaled.imag))

    def test_postscale_inverts(self):
        s = np.array([3.0, 2.0, 1.0])
        assert np.array_equal(
            postscale_singular_values(np.ldexp(s, -40), -40), s
        )
        assert postscale_singular_values(s, 0) is s


class TestSvdIntegration:
    def test_svd_validates_by_default(self):
        from repro.linalg.svd import svd

        a = np.eye(8)
        a[3, 3] = np.nan
        with pytest.raises(InputValidationError):
            svd(a)

    def test_svd_no_validate_skips_the_check(self, rng):
        from repro.linalg.svd import svd

        # Healthy input still solves fine with validation off.
        a = rng.standard_normal((8, 8))
        result = svd(a, validate=False)
        assert np.allclose(
            result.singular_values,
            np.linalg.svd(a, compute_uv=False),
        )

    @pytest.mark.parametrize("magnitude", [1e300, 1e-300])
    def test_svd_prescales_extreme_input(self, rng, magnitude):
        from repro.linalg.svd import svd

        a = rng.standard_normal((12, 12)) * magnitude
        result = svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.all(np.isfinite(result.singular_values))
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)

    def test_unknown_prescale_mode_rejected(self, rng):
        from repro.linalg.svd import svd

        with pytest.raises(NumericalError):
            svd(rng.standard_normal((4, 4)), prescale="sometimes")
