"""Unit tests for the declarative strict-JSON validator."""

import pickle

import pytest

from repro.errors import (
    BenchmarkError,
    CheckpointError,
    ConfigurationError,
    SchemaValidationError,
)
from repro.guard import validate_json


class TestScalars:
    def test_type_match_returns_value(self):
        assert validate_json(3, int) == 3
        assert validate_json("x", str) == "x"

    def test_type_mismatch_names_path(self):
        with pytest.raises(SchemaValidationError, match=r"\$: must be int"):
            validate_json("x", int)

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaValidationError, match="got bool"):
            validate_json(True, int)
        with pytest.raises(SchemaValidationError, match="got bool"):
            validate_json(True, (int, float))
        assert validate_json(True, (int, bool)) is True

    def test_const(self):
        assert validate_json("1", {"const": "1"}) == "1"
        with pytest.raises(SchemaValidationError, match="must be '1'"):
            validate_json("99", {"const": "1"})

    def test_enum(self):
        assert validate_json("a", {"enum": ("a", "b")}) == "a"
        with pytest.raises(SchemaValidationError, match="one of"):
            validate_json("c", {"enum": ("a", "b")})

    def test_non_empty(self):
        with pytest.raises(SchemaValidationError, match="non-empty"):
            validate_json("", {"type": str, "non_empty": True})


class TestContainers:
    def test_items_with_index_path(self):
        with pytest.raises(SchemaValidationError, match=r"\$\[1\]"):
            validate_json([1, "x"], {"items": int})

    def test_min_len(self):
        with pytest.raises(SchemaValidationError, match="at least 1"):
            validate_json([], {"items": int, "min_len": 1})

    def test_missing_required_field(self):
        with pytest.raises(SchemaValidationError, match="'x'"):
            validate_json({}, {"fields": {"x": int}})

    def test_optional_field_may_be_absent(self):
        spec = {"fields": {"x": int, "y": int}, "optional": ("y",)}
        assert validate_json({"x": 1}, spec) == {"x": 1}

    def test_unknown_fields_rejected_by_default(self):
        with pytest.raises(SchemaValidationError, match="unknown"):
            validate_json({"x": 1, "z": 2}, {"fields": {"x": int}})
        validate_json(
            {"x": 1, "z": 2}, {"fields": {"x": int}, "extra": "allow"}
        )

    def test_nested_path_is_precise(self):
        spec = {"fields": {"results": {"items": {"fields": {"t": int}}}}}
        with pytest.raises(
            SchemaValidationError, match=r"\$\.results\[1\]\.t"
        ) as excinfo:
            validate_json({"results": [{"t": 1}, {"t": "x"}]}, spec)
        assert excinfo.value.path == "$.results[1].t"

    def test_values_spec(self):
        validate_json({"a": 1, "b": 2}, {"values": int})
        with pytest.raises(SchemaValidationError, match=r"\$\['b'\]"):
            validate_json({"a": 1, "b": "x"}, {"values": int})


class TestErrorContract:
    def test_error_satisfies_all_subsystem_contracts(self):
        with pytest.raises(SchemaValidationError) as excinfo:
            validate_json("x", int)
        error = excinfo.value
        assert isinstance(error, ConfigurationError)
        assert isinstance(error, BenchmarkError)
        assert isinstance(error, CheckpointError)

    def test_error_pickles_with_path(self):
        with pytest.raises(SchemaValidationError) as excinfo:
            validate_json({"a": "x"}, {"fields": {"a": int}})
        rebuilt = pickle.loads(pickle.dumps(excinfo.value))
        assert rebuilt.path == "$.a"

    def test_invalid_schema_is_a_programming_error(self):
        with pytest.raises(TypeError):
            validate_json(1, {"bogus": True})
