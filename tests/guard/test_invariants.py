"""Factor invariant checks and the --check-invariants solver mode."""

import numpy as np
import pytest

from repro.guard import (
    InvariantReport,
    check_factor_invariants,
    orthogonality_residual,
)


def _jacobi_state(a):
    """A correct (B = A V, V) working state built from LAPACK."""
    u, s, vt = np.linalg.svd(a)
    v = vt.T
    b = a @ v
    return b, v


class TestOrthogonalityResidual:
    def test_orthogonal_columns_score_near_zero(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((8, 8)))
        assert orthogonality_residual(q * [1.0, 2, 3, 4, 5, 6, 7, 8]) < 1e-14

    def test_correlated_columns_score_high(self):
        b = np.ones((4, 2))
        assert orthogonality_residual(b) == pytest.approx(1.0)

    def test_matches_scalar_routine(self, rng):
        from repro.linalg.convergence import off_diagonal_ratio

        b = rng.standard_normal((12, 8))
        assert orthogonality_residual(b) == pytest.approx(
            off_diagonal_ratio(b), rel=1e-12
        )

    def test_zero_matrix_scores_zero(self):
        assert orthogonality_residual(np.zeros((4, 4))) == 0.0

    def test_zero_columns_skipped(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        q[:, 2] = 0.0
        assert orthogonality_residual(q) < 1e-14


class TestCheckFactorInvariants:
    def test_correct_state_passes(self, rng):
        a = rng.standard_normal((10, 10))
        b, v = _jacobi_state(a)
        report = check_factor_invariants(a, b, v, precision=1e-6)
        assert isinstance(report, InvariantReport)
        assert report.ok
        assert report.reconstruction_error < 1e-13
        assert report.orthogonality_residual < 1e-6

    def test_corrupted_state_fails_reconstruction(self, rng):
        a = rng.standard_normal((10, 10))
        b, v = _jacobi_state(a)
        b = b.copy()
        b[:, 0] *= 2.0  # a lost update
        report = check_factor_invariants(a, b, v, precision=1e-6)
        assert not report.ok
        assert report.reconstruction_error > 1e-3

    def test_unconverged_state_skips_orthogonality(self, rng):
        a = rng.standard_normal((10, 10))
        # B = A, V = I is a valid *unconverged* state: reconstruction
        # holds exactly, orthogonality does not.
        report = check_factor_invariants(
            a, a.copy(), np.eye(10), precision=1e-6, converged=False
        )
        assert report.ok
        assert report.orthogonality_residual is None
        strict = check_factor_invariants(
            a, a.copy(), np.eye(10), precision=1e-6, converged=True
        )
        assert not strict.ok

    def test_counters_published(self, rng):
        from repro import obs

        a = rng.standard_normal((6, 6))
        b, v = _jacobi_state(a)
        obs.reset()
        obs.enable()
        try:
            check_factor_invariants(a, b, v, precision=1e-6)
            check_factor_invariants(a, 2.0 * b, v, precision=1e-6)
            counters = obs.get_metrics().snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["guard.invariant_checks"] == 2
        assert counters["guard.invariant_failures"] == 1


class TestSolverIntegration:
    @pytest.mark.parametrize("method", ["hestenes", "block"])
    def test_check_invariants_mode_matches_plain_solve(self, rng, method):
        from repro.linalg.svd import svd

        a = rng.standard_normal((16, 16))
        kwargs = {"block_width": 8} if method == "block" else {}
        checked = svd(a, method=method, check_invariants=True, **kwargs)
        plain = svd(a, method=method, **kwargs)
        assert checked.converged
        assert not checked.degraded
        assert np.array_equal(
            checked.singular_values, plain.singular_values
        )

    def test_check_invariants_with_fixed_sweeps(self, rng):
        from repro.linalg.svd import svd

        # A fixed-sweep run is legitimately unconverged: only the
        # reconstruction invariant applies, and it holds.
        a = rng.standard_normal((16, 16))
        result = svd(a, fixed_sweeps=1, check_invariants=True)
        assert np.all(np.isfinite(result.singular_values))
