"""Adversarial inputs against every public solver entry point.

The contract under test (ISSUE 5, satellite 3): NaN, ±Inf, all-zero
columns, 1e±300 scalings and float32 denormals either raise a
structured :class:`~repro.errors.InputValidationError` or converge
(with pre-scaling) to finite, correct singular values — **never**
silent NaN output.
"""

import numpy as np
import pytest

from repro.errors import InputValidationError


def nan_matrix(n=12):
    a = np.eye(n)
    a[1, 2] = np.nan
    return a


def inf_matrix(n=12, sign=1.0):
    a = np.eye(n)
    a[0, 1] = sign * np.inf
    return a


ADVERSARIAL_NONFINITE = [
    pytest.param(nan_matrix(), id="nan"),
    pytest.param(inf_matrix(sign=1.0), id="+inf"),
    pytest.param(inf_matrix(sign=-1.0), id="-inf"),
]


def make_rng_matrix(n=12, scale=1.0, dtype=float, seed=7):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, n)) * scale).astype(dtype)


class TestLibraryEntryPoints:
    @pytest.mark.parametrize("bad", ADVERSARIAL_NONFINITE)
    @pytest.mark.parametrize("method", ["hestenes", "block"])
    def test_svd_rejects_non_finite(self, bad, method):
        from repro.linalg.svd import svd

        kwargs = {"block_width": 4} if method == "block" else {}
        with pytest.raises(InputValidationError) as excinfo:
            svd(bad, method=method, **kwargs)
        assert excinfo.value.reason == "non-finite"

    @pytest.mark.parametrize("bad", ADVERSARIAL_NONFINITE)
    @pytest.mark.parametrize("strategy", ["scalar", "vectorized"])
    def test_hestenes_rejects_non_finite(self, bad, strategy):
        from repro.linalg.hestenes import hestenes_svd

        with pytest.raises(InputValidationError):
            hestenes_svd(bad, strategy=strategy)

    @pytest.mark.parametrize("bad", ADVERSARIAL_NONFINITE)
    def test_solve_batch_rejects_non_finite(self, bad):
        from repro.workloads.batch import TaskBatch, solve_batch

        n = bad.shape[0]
        batch = TaskBatch(m=n, n=n, matrices=[np.eye(n), bad])
        with pytest.raises(InputValidationError):
            solve_batch(batch)

    @pytest.mark.parametrize("bad", ADVERSARIAL_NONFINITE)
    def test_batch_executor_rejects_non_finite(self, bad):
        from repro.core.config import HeteroSVDConfig
        from repro.exec.batch import BatchExecutor
        from repro.workloads.batch import TaskBatch

        n = bad.shape[0]
        config = HeteroSVDConfig(m=n, n=n, p_eng=4, p_task=1,
                                 precision=1e-4)
        executor = BatchExecutor(config, engine="software", jobs=1,
                                 degrade=False)
        batch = TaskBatch(m=n, n=n, matrices=[bad])
        with pytest.raises(InputValidationError):
            executor.run(batch)

    def test_complex_path_rejects_non_finite(self):
        from repro.linalg.svd import svd

        a = np.eye(8, dtype=complex)
        a[2, 2] = complex(0.0, np.inf)
        with pytest.raises(InputValidationError):
            svd(a)


class TestZeroColumns:
    @pytest.mark.parametrize("method", ["hestenes", "block"])
    def test_zero_columns_converge_with_zero_singular_values(self, method):
        from repro.linalg.svd import svd

        a = make_rng_matrix(12)
        a[:, 3] = 0.0
        a[:, 7] = 0.0
        kwargs = {"block_width": 4} if method == "block" else {}
        result = svd(a, method=method, **kwargs)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.all(np.isfinite(result.singular_values))
        assert np.allclose(result.singular_values, s_ref, atol=1e-8)

    def test_all_zero_matrix(self):
        from repro.linalg.svd import svd

        result = svd(np.zeros((8, 8)))
        assert np.all(result.singular_values == 0.0)


class TestExtremeScales:
    @pytest.mark.parametrize("scale", [1e300, 1e-300])
    @pytest.mark.parametrize("method", ["hestenes", "block"])
    def test_extreme_scaling_converges_exactly(self, scale, method):
        from repro.linalg.svd import svd

        a = make_rng_matrix(12, scale=scale)
        kwargs = {"block_width": 4} if method == "block" else {}
        result = svd(a, method=method, **kwargs)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.all(np.isfinite(result.singular_values))
        assert not np.any(np.isnan(result.singular_values))
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)

    def test_extreme_scaling_without_prescale_still_no_silent_nan(self):
        """prescale=False relies on the hypot-rescaled rotation
        kernels alone; the result must still be finite."""
        from repro.linalg.svd import svd

        a = make_rng_matrix(8, scale=1e300)
        with np.errstate(over="ignore"):  # overflow is the point
            result = svd(a, prescale=False)
        assert not np.any(np.isnan(result.singular_values))

    def test_mixed_scale_columns(self):
        # Condition ~1e300: beyond any double-precision SVD's relative
        # accuracy for the small values, so the contract here is
        # finite output and a correct dominant singular value.
        from repro.linalg.svd import svd

        a = make_rng_matrix(8)
        a[:, 0] *= 1e150
        a[:, 1] *= 1e-150
        result = svd(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.all(np.isfinite(result.singular_values))
        assert result.singular_values[0] == pytest.approx(
            s_ref[0], rel=1e-8
        )


class TestFloat32Denormals:
    def test_denormal_float32_input_solves_finite(self):
        from repro.guard import validate_matrix
        from repro.linalg.svd import svd

        a = make_rng_matrix(8, dtype=np.float32)
        a[0, 1] = np.float32(1e-40)  # denormal in float32
        assert validate_matrix(a).denormals
        result = svd(a)
        s_ref = np.linalg.svd(a.astype(float), compute_uv=False)
        assert np.all(np.isfinite(result.singular_values))
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)


class TestCliEntryPoint:
    def test_cli_rejects_nan_input_with_exit_4(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "nan.npy"
        np.save(path, nan_matrix())
        assert main(["svd", "--input", str(path)]) == 4
        err = capsys.readouterr().err
        assert "invalid input" in err
        assert "non-finite" in err

    def test_cli_no_validate_opts_out(self, tmp_path):
        from repro.cli import main
        from repro.errors import NumericalError

        # Opting out skips the guard (no exit 4), but the accelerator
        # model's own non-finite check still refuses to emit NaN
        # singular values — there is no silent-NaN path.
        path = tmp_path / "nan.npy"
        np.save(path, nan_matrix())
        with pytest.raises(NumericalError, match="non-finite"):
            main(["svd", "--input", str(path), "--no-validate"])
