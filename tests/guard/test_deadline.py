"""Deadline budgets: unit behavior and end-to-end expiry contracts."""

import pickle
import time

import numpy as np
import pytest

from repro.errors import DeadlineExceeded, NumericalError
from repro.guard import Deadline, PartialResult, as_deadline
from repro.workloads.matrices import conditioned_matrix


class TestDeadline:
    def test_budget_accounting(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 <= deadline.elapsed() < 1.0
        assert 59.0 < deadline.remaining() <= 60.0

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_negative_and_nan_budget_rejected(self):
        with pytest.raises(NumericalError):
            Deadline(-1.0)
        with pytest.raises(NumericalError):
            Deadline(float("nan"))

    def test_check_raises_with_partial_result(self):
        deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check(
                kind="hestenes-sweep", completed=3, total=30,
                residual=1e-4, rotations=99,
            )
        partial = excinfo.value.partial
        assert partial.kind == "hestenes-sweep"
        assert partial.completed == 3
        assert partial.total == 30
        assert partial.residual == 1e-4
        assert partial.details["rotations"] == 99
        assert "3/30" in partial.describe()

    def test_check_noop_before_expiry(self):
        Deadline(60.0).check(kind="x", completed=0)

    def test_as_deadline_coercion(self):
        deadline = Deadline(5.0)
        assert as_deadline(deadline) is deadline
        assert as_deadline(None) is None
        assert isinstance(as_deadline(1.5), Deadline)
        with pytest.raises(NumericalError):
            as_deadline(True)
        with pytest.raises(NumericalError):
            as_deadline("soon")

    def test_exception_pickles_with_partial(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            Deadline(0.0).check(kind="batch", completed=1, total=4)
        rebuilt = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(rebuilt, DeadlineExceeded)
        assert rebuilt.partial.completed == 1

    def test_partial_result_describe_without_total(self):
        partial = PartialResult(kind="dse-sweep", completed=7)
        assert "7" in partial.describe()


class TestSolverDeadline:
    """The ISSUE acceptance contract: a 512x512 ill-conditioned solve
    with a 0.1 s budget raises within 2x the budget, carrying real
    progress accounting."""

    def test_hestenes_expires_within_twice_the_budget(self):
        from repro.linalg.svd import svd

        a = conditioned_matrix(512, 512, condition=1e12, seed=0)
        budget = 0.1
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            svd(a, deadline=budget, precision=1e-12, max_sweeps=100)
        elapsed = time.monotonic() - start
        assert elapsed < 2.0 * budget, (
            f"deadline honored {elapsed:.3f}s after a {budget}s budget"
        )
        error = excinfo.value
        assert error.budget_s == budget
        assert error.partial is not None
        assert error.partial.kind == "hestenes-sweep"
        assert error.partial.total is not None

    def test_block_method_also_expires(self):
        from repro.linalg.svd import svd

        a = conditioned_matrix(256, 256, condition=1e12, seed=1)
        with pytest.raises(DeadlineExceeded) as excinfo:
            svd(a, method="block", block_width=8, deadline=0.05,
                precision=1e-13, max_sweeps=100)
        assert excinfo.value.partial.kind == "block-sweep"

    def test_generous_deadline_does_not_interfere(self, rng):
        from repro.linalg.svd import svd

        a = rng.standard_normal((16, 16))
        result = svd(a, deadline=300.0)
        baseline = svd(a)
        assert np.array_equal(
            result.singular_values, baseline.singular_values
        )

    def test_solve_batch_shares_one_budget(self, rng):
        from repro.workloads.batch import make_batch, solve_batch

        batch = make_batch(96, 96, 12, seed=0)
        with pytest.raises(DeadlineExceeded):
            solve_batch(batch, deadline=0.01, precision=1e-12)


class TestDseDeadline:
    def test_expired_dse_resumes_losing_at_most_one_chunk(self, tmp_path):
        from repro.core.dse import DesignSpaceExplorer
        from repro.exec.parallel import CHUNKS_PER_WORKER
        from repro.resilience import SweepCheckpoint

        explorer = DesignSpaceExplorer(64, 64)
        total = len(explorer.candidates())
        ck_path = tmp_path / "dse.ckpt.json"

        # Expire partway: a budget long enough to finish some chunks.
        with pytest.raises(DeadlineExceeded) as excinfo:
            explorer.explore(checkpoint=str(ck_path), deadline=0.02)
        partial = excinfo.value.partial
        assert partial.kind == "dse-sweep"
        assert partial.details["checkpointed"] is True

        # Everything the expiry reported finished must be on disk —
        # the flush-before-raise contract (lose at most one chunk).
        chunk = max(CHUNKS_PER_WORKER, 8)  # jobs=1, default flush interval
        checkpoint = SweepCheckpoint(ck_path, kind="dse-sweep")
        assert len(checkpoint) >= partial.completed
        assert len(checkpoint) <= partial.completed + chunk

        # Resume with no deadline completes and matches a clean run.
        resumed = explorer.explore(checkpoint=ck_path)
        clean = explorer.explore()
        assert len(resumed) == len(clean) == total
        assert [(p.config.p_eng, p.config.p_task) for p in resumed] == \
            [(p.config.p_eng, p.config.p_task) for p in clean]
        assert [p.latency for p in resumed] == [p.latency for p in clean]

    def test_best_forwards_deadline(self):
        from repro.core.dse import DesignSpaceExplorer

        with pytest.raises(DeadlineExceeded):
            DesignSpaceExplorer(128, 128).best(deadline=0.0)


class TestBatchExecutorDeadline:
    def test_expiry_carries_completed_task_ids(self):
        from repro.core.config import HeteroSVDConfig
        from repro.exec.batch import BatchExecutor
        from repro.workloads.batch import make_batch

        config = HeteroSVDConfig(m=32, n=32, p_eng=4, p_task=2,
                                 precision=1e-4)
        executor = BatchExecutor(config, engine="software", jobs=1)
        batch = make_batch(32, 32, 6, seed=0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            executor.run(batch, deadline=1e-6)
        partial = excinfo.value.partial
        assert partial.kind == "batch"
        assert partial.total == 6
        assert partial.completed < 6
        assert partial.completed == \
            len(partial.details["completed_task_ids"])

    def test_generous_deadline_matches_plain_run(self):
        from repro.core.config import HeteroSVDConfig
        from repro.exec.batch import BatchExecutor
        from repro.workloads.batch import make_batch

        config = HeteroSVDConfig(m=24, n=24, p_eng=4, p_task=2,
                                 precision=1e-4)
        batch = make_batch(24, 24, 4, seed=0)
        executor = BatchExecutor(config, engine="software", jobs=1)
        bounded = executor.run(batch, deadline=300.0)
        plain = executor.run(batch)
        assert [r.task_id for r in bounded.results] == \
            [r.task_id for r in plain.results]
        for a, b in zip(bounded.results, plain.results):
            assert np.array_equal(a.sigma, b.sigma)


class TestSensitivityDeadline:
    def test_expiry_persists_completed_knobs(self, tmp_path):
        from repro.analysis.sensitivity import sensitivity_analysis
        from repro.core.config import HeteroSVDConfig

        config = HeteroSVDConfig(m=64, n=64, p_eng=8, p_task=1,
                                 fixed_iterations=6)
        ck_path = tmp_path / "sens.ckpt.json"
        with pytest.raises(DeadlineExceeded) as excinfo:
            sensitivity_analysis(config, checkpoint=str(ck_path),
                                 deadline=0.0)
        assert excinfo.value.partial.kind == "sensitivity"

        # The resumed run completes and matches a clean run.
        resumed = sensitivity_analysis(config, checkpoint=str(ck_path))
        clean = sensitivity_analysis(config)
        assert [r.parameter for r in resumed] == \
            [r.parameter for r in clean]


class TestRetryInteraction:
    def test_deadline_exceeded_is_never_retried(self):
        from repro.resilience import RetryPolicy

        calls = []

        def expire():
            calls.append(1)
            Deadline(0.0).check(kind="x", completed=0)

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(expire)
        assert len(calls) == 1
