"""Tests for the image-compression workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.imaging import (
    compress_image,
    compression_ratio,
    psnr,
    synthetic_image,
)


class TestSyntheticImage:
    def test_range_and_shape(self):
        image = synthetic_image(32, 48, seed=0)
        assert image.shape == (32, 48)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(
            synthetic_image(16, 16, seed=1), synthetic_image(16, 16, seed=1)
        )

    def test_smoothness_controls_spectral_decay(self):
        rough = synthetic_image(64, 64, smoothness=0.5, seed=2)
        smooth = synthetic_image(64, 64, smoothness=3.0, seed=2)
        s_rough = np.linalg.svd(rough - rough.mean(), compute_uv=False)
        s_smooth = np.linalg.svd(smooth - smooth.mean(), compute_uv=False)
        # Fraction of energy in the top-8 components.
        top8 = lambda s: (s[:8] ** 2).sum() / (s**2).sum()
        assert top8(s_smooth) > top8(s_rough)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_image(2, 10)
        with pytest.raises(ConfigurationError):
            synthetic_image(16, 16, smoothness=-1)


class TestCompression:
    @pytest.fixture
    def factored(self):
        image = synthetic_image(48, 48, smoothness=2.0, seed=3)
        u, s, vt = np.linalg.svd(image, full_matrices=False)
        return image, u, s, vt.T

    def test_quality_improves_with_rank(self, factored):
        image, u, s, v = factored
        quality = [
            psnr(image, compress_image(image, u, s, v, rank))
            for rank in (2, 8, 32)
        ]
        assert quality[0] < quality[1] < quality[2]

    def test_full_rank_is_lossless(self, factored):
        image, u, s, v = factored
        approx = compress_image(image, u, s, v, rank=48)
        assert psnr(image, approx) > 100.0

    def test_output_clipped(self, factored):
        image, u, s, v = factored
        approx = compress_image(image, u, s, v, rank=2)
        assert approx.min() >= 0.0
        assert approx.max() <= 1.0

    def test_compression_ratio_formula(self):
        assert compression_ratio(128, 128, 16) == pytest.approx(
            128 * 128 / (16 * 257)
        )

    def test_psnr_identical_is_infinite(self, factored):
        image, *_ = factored
        assert psnr(image, image) == float("inf")

    def test_psnr_shape_mismatch(self, factored):
        image, *_ = factored
        with pytest.raises(ConfigurationError):
            psnr(image, image[:-1])
