"""Unit tests for the MIMO channel workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.mimo import (
    mimo_channel,
    rayleigh_channel_real,
    waterfill,
)


class TestChannels:
    def test_real_channel_shape(self):
        h = rayleigh_channel_real(4, 8, seed=0)
        assert h.shape == (4, 8)

    def test_complex_embedding_shape(self):
        h = mimo_channel(4, 6, seed=0)
        assert h.shape == (8, 12)

    def test_embedding_duplicates_singular_values(self):
        h = mimo_channel(4, 4, seed=1)
        s = np.linalg.svd(h, compute_uv=False)
        # Real embedding of a complex matrix: each sigma appears twice.
        assert np.allclose(s[0::2], s[1::2], rtol=1e-10)

    def test_correlation_concentrates_energy(self):
        flat = mimo_channel(8, 8, correlation=0.0, seed=2)
        corr = mimo_channel(8, 8, correlation=0.9, seed=2)
        s_flat = np.linalg.svd(flat, compute_uv=False)
        s_corr = np.linalg.svd(corr, compute_uv=False)
        # Condition number grows strongly under spatial correlation.
        assert s_corr[0] / s_corr[-1] > 3 * (s_flat[0] / s_flat[-1])

    def test_invalid_correlation(self):
        with pytest.raises(ConfigurationError):
            mimo_channel(4, 4, correlation=1.0)

    def test_invalid_antennas(self):
        with pytest.raises(ConfigurationError):
            rayleigh_channel_real(0, 4)


class TestWaterfill:
    def test_power_budget_respected(self):
        s = np.array([3.0, 2.0, 1.0, 0.1])
        powers = waterfill(s, total_power=10.0)
        assert powers.sum() == pytest.approx(10.0)
        assert np.all(powers >= 0)

    def test_strong_beams_get_more_power(self):
        s = np.array([3.0, 1.0])
        powers = waterfill(s, total_power=2.0)
        assert powers[0] > powers[1]

    def test_weak_beam_dropped_at_low_power(self):
        s = np.array([10.0, 0.01])
        powers = waterfill(s, total_power=0.1)
        assert powers[1] == 0.0

    def test_equal_gains_split_evenly(self):
        powers = waterfill(np.array([2.0, 2.0]), total_power=4.0)
        assert powers[0] == pytest.approx(powers[1])

    def test_unsorted_input_handled(self):
        s = np.array([1.0, 3.0, 2.0])
        powers = waterfill(s, total_power=6.0)
        assert powers.sum() == pytest.approx(6.0)
        assert powers[1] >= powers[2] >= powers[0]

    def test_invalid_power(self):
        with pytest.raises(ConfigurationError):
            waterfill(np.array([1.0]), total_power=0.0)

    def test_all_zero_gains(self):
        with pytest.raises(ConfigurationError):
            waterfill(np.zeros(3), total_power=1.0)
