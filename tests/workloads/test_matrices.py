"""Unit tests for the matrix workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.matrices import (
    conditioned_matrix,
    low_rank_matrix,
    random_matrix,
    spectrum_matrix,
)


class TestRandomMatrix:
    def test_shape_and_determinism(self):
        a = random_matrix(8, 5, seed=7)
        b = random_matrix(8, 5, seed=7)
        assert a.shape == (8, 5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_matrix(8, 5, seed=1), random_matrix(8, 5, seed=2)
        )

    def test_scale(self):
        a = random_matrix(100, 100, seed=0, scale=10.0)
        assert 5 < np.std(a) < 15

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            random_matrix(0, 5)


class TestConditionedMatrix:
    def test_condition_number(self):
        a = conditioned_matrix(16, 16, condition=100.0, seed=3)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(100.0, rel=1e-6)

    def test_rectangular(self):
        a = conditioned_matrix(20, 8, condition=10.0, seed=3)
        s = np.linalg.svd(a, compute_uv=False)
        assert len(s) == 8
        assert s[0] / s[-1] == pytest.approx(10.0, rel=1e-6)

    def test_invalid_condition(self):
        with pytest.raises(ConfigurationError):
            conditioned_matrix(8, 8, condition=0.5)


class TestLowRankMatrix:
    def test_exact_rank(self):
        a = low_rank_matrix(12, 8, rank=3, seed=5)
        s = np.linalg.svd(a, compute_uv=False)
        assert np.all(s[:3] > 1e-10)
        assert np.allclose(s[3:], 0.0, atol=1e-12)

    def test_noise_fills_spectrum(self):
        a = low_rank_matrix(12, 8, rank=3, noise=0.1, seed=5)
        s = np.linalg.svd(a, compute_uv=False)
        assert np.all(s > 0)

    def test_rank_zero_is_zero_matrix(self):
        assert np.allclose(low_rank_matrix(6, 4, rank=0), 0.0)

    def test_invalid_rank(self):
        with pytest.raises(ConfigurationError):
            low_rank_matrix(6, 4, rank=5)


class TestSpectrumMatrix:
    def test_prescribed_spectrum(self):
        spectrum = [5.0, 2.0, 1.0, 0.1]
        a = spectrum_matrix(10, 4, spectrum, np.random.default_rng(0))
        s = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(s, spectrum, rtol=1e-10)

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            spectrum_matrix(10, 4, [1.0, 2.0])

    def test_negative_values(self):
        with pytest.raises(ConfigurationError):
            spectrum_matrix(4, 4, [1.0, -1.0, 0.5, 0.2])
