"""Tests for the streaming and tall-skinny workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.streaming import RatingStream, rating_stream
from repro.workloads.tallskinny import tall_skinny_matrix


class TestRatingStream:
    def test_chunking_covers_all_users(self):
        stream = rating_stream(100, 20, chunk_rows=16, seed=0)
        assert isinstance(stream, RatingStream)
        assert stream.total_rows == 100
        assert stream.initial.shape == (16, 20)
        assert [b.shape[0] for b in stream.updates] == [16] * 5 + [4]
        assert stream.full_matrix().shape == (100, 20)

    def test_single_chunk_stream(self):
        stream = rating_stream(10, 8, chunk_rows=16, seed=0)
        assert stream.updates == []
        assert stream.initial.shape == (10, 8)

    def test_rating_scale(self):
        stream = rating_stream(200, 30, seed=1)
        full = stream.full_matrix()
        assert full.min() >= 1.0
        assert full.max() <= 5.0

    def test_low_rank_structure(self):
        # Noise-free chunks share the item factors: latent_rank
        # preference directions plus the 3.0 DC offset carry the
        # matrix; the [1, 5] clipping nonlinearity leaves only a thin
        # tail beyond those latent_rank + 1 directions.
        stream = rating_stream(120, 40, latent_rank=5, noise=0.0,
                               seed=2)
        s = np.linalg.svd(stream.full_matrix(), compute_uv=False)
        tail = np.sum(s[6:] ** 2)
        assert tail < 0.01 * np.sum(s ** 2)

    def test_deterministic(self):
        a = rating_stream(64, 16, seed=9)
        b = rating_stream(64, 16, seed=9)
        assert np.array_equal(a.full_matrix(), b.full_matrix())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rating_stream(0, 10)
        with pytest.raises(ConfigurationError):
            rating_stream(10, 10, latent_rank=11)
        with pytest.raises(ConfigurationError):
            rating_stream(10, 10, chunk_rows=0)


class TestTallSkinnyMatrix:
    def test_shape_and_determinism(self):
        a = tall_skinny_matrix(500, 20, seed=3)
        b = tall_skinny_matrix(500, 20, seed=3)
        assert a.shape == (500, 20)
        assert np.array_equal(a, b)

    def test_graded_spectrum(self):
        a = tall_skinny_matrix(2000, 16, decay=0.5, seed=4)
        s = np.linalg.svd(a, compute_uv=False)
        # Geometric column scaling drives the condition number toward
        # 1 / decay**(n-1); with sampling noise, an order of magnitude
        # of slack is ample.
        assert s[0] / s[-1] > 0.5 ** -(16 - 1) / 10

    def test_unit_decay_is_plain_gaussian_scale(self):
        a = tall_skinny_matrix(3000, 10, decay=1.0, seed=5)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[0] / s[-1] < 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tall_skinny_matrix(5, 10)  # wide is rejected
        with pytest.raises(ConfigurationError):
            tall_skinny_matrix(10, 0)
        with pytest.raises(ConfigurationError):
            tall_skinny_matrix(10, 5, decay=0.0)
        with pytest.raises(ConfigurationError):
            tall_skinny_matrix(10, 5, decay=1.5)
