"""Unit tests for the recommender and batch workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.batch import make_batch
from repro.workloads.recsys import rating_matrix, top_k_approximation


class TestRatingMatrix:
    def test_shape_and_range(self):
        r = rating_matrix(20, 15, seed=0)
        assert r.shape == (20, 15)
        assert r.min() >= 1.0
        assert r.max() <= 5.0

    def test_low_rank_structure_dominates(self):
        r = rating_matrix(64, 48, latent_rank=4, noise=0.05, seed=1)
        centered = r - r.mean()
        s = np.linalg.svd(centered, compute_uv=False)
        # Top-4 singular values carry most of the energy.
        assert (s[:4] ** 2).sum() / (s**2).sum() > 0.7

    def test_density_imputation(self):
        r = rating_matrix(30, 30, density=0.3, seed=2)
        values, counts = np.unique(np.round(r, 6), return_counts=True)
        # The imputed global mean appears many times.
        assert counts.max() > 0.5 * r.size

    def test_determinism(self):
        assert np.array_equal(
            rating_matrix(10, 10, seed=3), rating_matrix(10, 10, seed=3)
        )

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            rating_matrix(0, 5)
        with pytest.raises(ConfigurationError):
            rating_matrix(10, 10, latent_rank=11)
        with pytest.raises(ConfigurationError):
            rating_matrix(10, 10, density=0.0)


class TestTopKApproximation:
    def test_rank_k_reconstruction(self, rng):
        a = rng.standard_normal((12, 8))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        approx = top_k_approximation(u, s, vt.T, k=8)
        assert np.allclose(approx, a, atol=1e-10)

    def test_truncation_error_decreases_with_k(self, rng):
        a = rng.standard_normal((12, 8))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        errors = [
            np.linalg.norm(a - top_k_approximation(u, s, vt.T, k))
            for k in (1, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_k(self, rng):
        a = rng.standard_normal((6, 4))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        with pytest.raises(ConfigurationError):
            top_k_approximation(u, s, vt.T, k=0)


class TestBatch:
    def test_batch_size_and_shapes(self):
        batch = make_batch(16, 8, batch=5)
        assert batch.size == 5
        assert len(batch) == 5
        assert all(m.shape == (16, 8) for m in batch)

    def test_deterministic(self):
        b1 = make_batch(8, 8, 3, seed=9)
        b2 = make_batch(8, 8, 3, seed=9)
        for a, b in zip(b1, b2):
            assert np.array_equal(a, b)

    def test_tasks_distinct(self):
        batch = make_batch(8, 8, 2, seed=0)
        assert not np.array_equal(batch.matrices[0], batch.matrices[1])

    def test_total_bits(self):
        batch = make_batch(8, 8, 4)
        assert batch.total_bits() == 4 * 8 * 8 * 32

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            make_batch(8, 8, 0)
