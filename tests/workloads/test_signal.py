"""Tests for the array signal-processing workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.linalg.svd import svd
from repro.workloads.signal import (
    estimate_doa,
    music_spectrum,
    signal_subspace,
    snapshot_matrix,
    steering_vector,
)


class TestSteeringVector:
    def test_shape_and_norm(self):
        v = steering_vector(8, 0.3)
        assert v.shape == (16,)
        # cos^2 + sin^2 per sensor.
        assert np.linalg.norm(v) == pytest.approx(np.sqrt(8))

    def test_broadside(self):
        # theta = 0: all phases zero.
        v = steering_vector(4, 0.0)
        assert np.allclose(v[:4], 1.0)
        assert np.allclose(v[4:], 0.0)

    def test_invalid_sensors(self):
        with pytest.raises(ConfigurationError):
            steering_vector(0, 0.1)


class TestSnapshotMatrix:
    def test_shape(self):
        x = snapshot_matrix(8, 32, [0.1, -0.4], seed=0)
        assert x.shape == (16, 32)

    def test_snr_controls_noise(self):
        clean = snapshot_matrix(8, 256, [0.2], snr_db=40.0, seed=1)
        noisy = snapshot_matrix(8, 256, [0.2], snr_db=-10.0, seed=1)
        # High SNR -> snapshot matrix nearly rank-2 (one source in the
        # real embedding); low SNR -> full spread.
        s_clean = np.linalg.svd(clean, compute_uv=False)
        s_noisy = np.linalg.svd(noisy, compute_uv=False)
        assert s_clean[2] / s_clean[0] < 0.05
        assert s_noisy[2] / s_noisy[0] > 0.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            snapshot_matrix(4, 16, [])
        with pytest.raises(ConfigurationError):
            snapshot_matrix(2, 16, [0.1, 0.2])
        with pytest.raises(ConfigurationError):
            snapshot_matrix(8, 0, [0.1])


class TestSubspaceAndMUSIC:
    def test_signal_subspace_shape(self, rng):
        u = rng.standard_normal((16, 10))
        s = np.linspace(10, 1, 10)
        subspace = signal_subspace(u, s, n_sources=2)
        assert subspace.shape == (16, 4)

    def test_invalid_source_count(self, rng):
        u = rng.standard_normal((16, 10))
        s = np.linspace(10, 1, 10)
        with pytest.raises(ConfigurationError):
            signal_subspace(u, s, n_sources=6)

    def test_spectrum_peaks_at_source(self):
        angle = np.deg2rad(20.0)
        x = snapshot_matrix(12, 128, [angle], snr_db=25.0, seed=4)
        result = svd(x, precision=1e-9)
        subspace = signal_subspace(result.u, result.singular_values, 1)
        grid = np.linspace(-np.pi / 2, np.pi / 2, 361)
        spectrum = music_spectrum(subspace, 12, grid)
        peak_angle = grid[int(np.argmax(spectrum))]
        assert abs(peak_angle - angle) < np.deg2rad(1.0)

    def test_estimate_doa_two_sources(self):
        angles = [np.deg2rad(-30.0), np.deg2rad(25.0)]
        x = snapshot_matrix(16, 128, angles, snr_db=20.0, seed=5)
        result = svd(x, precision=1e-9)
        estimated = estimate_doa(result.u, result.singular_values, 16, 2)
        assert len(estimated) == 2
        assert np.allclose(
            np.sort(estimated), np.sort(angles), atol=np.deg2rad(1.5)
        )
