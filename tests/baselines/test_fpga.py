"""Unit tests for the FPGA baseline model [6]."""

import pytest

from repro.baselines.fpga_bcv import FPGA_RESOURCES, FPGABaselineModel
from repro.errors import ConfigurationError

#: Table II FPGA latency column (6 iterations, 200 MHz).
TABLE2_FPGA_LATENCY = {
    128: 0.0014,
    256: 0.0113,
    512: 0.0829,
    1024: 0.6119,
}


class TestCalibration:
    @pytest.mark.parametrize("n,expected", TABLE2_FPGA_LATENCY.items())
    def test_table2_latency_within_15_percent(self, n, expected):
        latency = FPGABaselineModel().latency_seconds(n, iterations=6)
        assert abs(latency - expected) / expected < 0.15, (n, latency)

    def test_cubic_scaling(self):
        model = FPGABaselineModel()
        assert model.iteration_seconds(512) == pytest.approx(
            8 * model.iteration_seconds(256)
        )

    def test_linear_in_iterations(self):
        model = FPGABaselineModel()
        assert model.latency_seconds(256, 12) == pytest.approx(
            2 * model.latency_seconds(256, 6)
        )

    def test_throughput_is_inverse_latency(self):
        model = FPGABaselineModel()
        assert model.throughput_tasks_per_s(256) == pytest.approx(
            1 / model.latency_seconds(256)
        )


class TestResources:
    def test_table2_resource_row(self):
        assert FPGA_RESOURCES.lut == 212_000
        assert FPGA_RESOURCES.dsp == 1602
        assert FPGA_RESOURCES.dsp_fraction == pytest.approx(0.445)
        assert FPGABaselineModel().resources is FPGA_RESOURCES


class TestValidation:
    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            FPGABaselineModel().iteration_seconds(1)

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            FPGABaselineModel().latency_seconds(128, 0)

    def test_invalid_constructor(self):
        with pytest.raises(ConfigurationError):
            FPGABaselineModel(frequency_hz=0)
