"""Unit tests for the GPU baseline model [11]."""

import pytest

from repro.baselines.gpu_wcycle import RTX3090, GPUBaselineModel
from repro.errors import ConfigurationError

#: Table III GPU columns (converged runs; throughput at batch 100).
TABLE3_GPU_LATENCY = {128: 0.0166, 256: 0.0429, 512: 0.1237, 1024: 0.6857}
TABLE3_GPU_THROUGHPUT = {128: 1351.35, 256: 217.39, 512: 27.55, 1024: 3.52}
TABLE3_GPU_EE = {128: 5.005, 256: 0.805, 512: 0.102, 1024: 0.013}


@pytest.fixture
def gpu():
    return GPUBaselineModel()


class TestCalibration:
    @pytest.mark.parametrize("n,expected", TABLE3_GPU_LATENCY.items())
    def test_latency_within_20_percent(self, gpu, n, expected):
        latency = gpu.latency_seconds(n, n)
        assert abs(latency - expected) / expected < 0.20, (n, latency)

    @pytest.mark.parametrize("n,expected", TABLE3_GPU_THROUGHPUT.items())
    def test_throughput_within_20_percent(self, gpu, n, expected):
        thr = gpu.throughput_tasks_per_s(n, n, 100)
        assert abs(thr - expected) / expected < 0.20, (n, thr)

    @pytest.mark.parametrize("n,expected", TABLE3_GPU_EE.items())
    def test_energy_efficiency_within_20_percent(self, gpu, n, expected):
        ee = gpu.energy_efficiency(n, n, 100)
        assert abs(ee - expected) / expected < 0.20, (n, ee)


class TestRegimes:
    def test_single_matrix_is_launch_bound(self, gpu):
        # Batch amortization: 100 small matrices cost far less than
        # 100x the single latency.
        single = gpu.latency_seconds(128, 128)
        batched = gpu.batch_seconds(128, 128, 100)
        assert batched < 20 * single

    def test_batch_efficiency_grows_with_size(self, gpu):
        effs = [gpu.batch_efficiency(n) for n in (128, 256, 512, 1024)]
        assert effs == sorted(effs)

    def test_efficiency_capped(self, gpu):
        assert gpu.batch_efficiency(10**6) <= 0.85

    def test_core_utilization_grows_with_size(self, gpu):
        utils = [gpu.core_utilization(n, n) for n in (128, 512, 1024)]
        assert utils == sorted(utils)
        assert all(0 < u < 1 for u in utils)

    def test_memory_utilization_alias(self, gpu):
        assert gpu.memory_utilization(256) == gpu.batch_efficiency(256)

    def test_iterations_grow_with_size(self, gpu):
        assert gpu.iterations(1024) > gpu.iterations(128)


class TestValidation:
    def test_spec_values(self):
        assert RTX3090.board_power_w == 270.0
        assert RTX3090.cuda_cores == 10496

    def test_invalid_size(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.latency_seconds(1, 128)

    def test_invalid_batch(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.batch_seconds(128, 128, 0)
