"""Tests for the runnable CPU blocked-Jacobi baseline."""

import numpy as np
import pytest

from repro.baselines.cpu_blocked import cpu_blocked_jacobi_svd
from repro.errors import NumericalError
from repro.linalg.hestenes import hestenes_svd


class TestCPUBlockedJacobi:
    def test_matches_lapack(self, rng):
        a = rng.standard_normal((32, 16))
        result = cpu_blocked_jacobi_svd(a, precision=1e-10)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-8)
        assert result.converged

    def test_cross_validates_scalar_implementation(self, rng):
        # Independent vectorized math must agree with the scalar driver.
        a = rng.standard_normal((24, 12))
        vectorized = cpu_blocked_jacobi_svd(a, precision=1e-10)
        scalar = hestenes_svd(a, precision=1e-10)
        assert np.allclose(
            vectorized.singular_values, scalar.singular_values, rtol=1e-9
        )

    def test_u_orthonormal(self, rng):
        a = rng.standard_normal((20, 10))
        result = cpu_blocked_jacobi_svd(a, precision=1e-10)
        gram = result.u.T @ result.u
        assert np.allclose(gram, np.eye(10), atol=1e-8)

    def test_equal_norm_columns(self):
        # tau == 0 corner: sign(0) fallback must still rotate.
        a = np.array([[1.0, 1.0], [1.0, -0.5], [0.0, 0.3]])
        result = cpu_blocked_jacobi_svd(a, precision=1e-12)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-10)

    def test_rank_deficient(self, rng):
        a = np.outer(rng.standard_normal(12), rng.standard_normal(6))
        result = cpu_blocked_jacobi_svd(a, precision=1e-10)
        assert result.singular_values[0] > 0
        assert np.allclose(result.singular_values[1:], 0.0, atol=1e-8)

    def test_fixed_sweeps_mode(self, rng):
        a = rng.standard_normal((16, 8))
        result = cpu_blocked_jacobi_svd(a, fixed_sweeps=2)
        assert result.sweeps == 2

    def test_wall_time_recorded(self, rng):
        a = rng.standard_normal((16, 8))
        result = cpu_blocked_jacobi_svd(a)
        assert result.wall_seconds > 0

    def test_rejects_wide(self, rng):
        with pytest.raises(NumericalError):
            cpu_blocked_jacobi_svd(rng.standard_normal((4, 8)))

    def test_rejects_odd_columns(self, rng):
        with pytest.raises(NumericalError):
            cpu_blocked_jacobi_svd(rng.standard_normal((8, 5)))

    def test_non_convergence_raises(self, rng):
        a = rng.standard_normal((30, 16))
        with pytest.raises(NumericalError):
            cpu_blocked_jacobi_svd(a, precision=1e-14, max_sweeps=1)
