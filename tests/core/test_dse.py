"""Unit tests for the two-stage design-space exploration (Fig. 8)."""

import pytest

from repro.core.dse import (
    DesignSpaceExplorer,
    achievable_frequency_hz,
)
from repro.errors import ConfigurationError, DesignSpaceError
from repro.units import mhz


class TestAchievableFrequency:
    def test_small_single_task_hits_peak(self):
        # Table V: 128x128 batch-1 closes at 450 MHz.
        assert achievable_frequency_hz(128, 1) == pytest.approx(mhz(450))

    def test_decreases_with_size(self):
        freqs = [achievable_frequency_hz(m, 1) for m in (128, 256, 512, 1024)]
        assert freqs == sorted(freqs, reverse=True)

    def test_decreases_with_tasks(self):
        assert achievable_frequency_hz(128, 9) < achievable_frequency_hz(128, 1)

    def test_floor_at_310(self):
        # Table V never reports below 310 MHz.
        assert achievable_frequency_hz(1024, 26) == pytest.approx(mhz(310))

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            achievable_frequency_hz(0, 1)


class TestStage1:
    def test_table6_maxima(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        stage1 = dse.stage1(frequency_hz=mhz(208.3))
        # The paper's Table VI design points.
        assert stage1[2] == 26
        assert stage1[4] == 9
        assert stage1[6] == 4
        assert stage1[8] == 2

    def test_1024_is_uram_bound(self):
        dse = DesignSpaceExplorer(1024, 1024)
        stage1 = dse.stage1()
        assert stage1[8] == 1  # Table V's chosen point

    def test_every_p_eng_has_entry_for_small_sizes(self):
        stage1 = DesignSpaceExplorer(128, 128).stage1()
        assert set(stage1) == set(range(1, 12))


class TestStage2:
    def test_evaluate_returns_complete_point(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        point = dse.evaluate(4, 2)
        assert point.latency > 0
        assert point.throughput > 0
        assert point.power.total > 0
        assert point.energy_efficiency == pytest.approx(
            point.throughput / point.power.total
        )

    def test_padding_for_non_dividing_p_eng(self):
        dse = DesignSpaceExplorer(128, 128)
        point = dse.evaluate(6, 1)
        assert point.config.n % 6 == 0
        assert point.config.n >= 128

    def test_latency_objective_prefers_high_p_eng(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        best = dse.best("latency")
        assert best.config.p_eng >= 8
        assert best.config.p_task == 1

    def test_throughput_objective_prefers_high_p_task(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        best = dse.best("throughput", batch=100)
        assert best.config.p_task >= 9

    def test_tradeoff_matches_table6_narrative(self):
        # Paper: raising P_eng cuts latency; raising P_task lifts
        # throughput but costs power.
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        freq = mhz(208.3)
        low = dse.evaluate(2, 26, batch=100, frequency_hz=freq)
        high = dse.evaluate(8, 2, batch=100, frequency_hz=freq)
        assert high.latency < low.latency
        assert low.throughput > high.throughput
        assert low.power.total > high.power.total

    def test_power_cap_respected(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        points = dse.explore("throughput", batch=100, power_cap_w=39.0)
        assert all(p.power.total <= 39.0 for p in points)

    def test_explore_sorted_by_objective(self):
        dse = DesignSpaceExplorer(128, 128, fixed_iterations=6)
        points = dse.explore("latency")
        latencies = [p.latency for p in points]
        assert latencies == sorted(latencies)

    def test_space_size_matches_paper_scale(self):
        # The paper cites 286 candidate points (11 x 26); the feasible
        # subset for a small matrix is near 100.
        points = DesignSpaceExplorer(128, 128, fixed_iterations=6).explore()
        assert 50 <= len(points) <= 286

    def test_unknown_objective_rejected(self):
        dse = DesignSpaceExplorer(128, 128)
        with pytest.raises(ConfigurationError):
            dse.explore("area")

    def test_objective_value_ranking(self):
        dse = DesignSpaceExplorer(128, 128, fixed_iterations=6)
        point = dse.evaluate(8, 1)
        assert point.objective_value("latency") == -point.latency
        assert point.objective_value("throughput") == point.throughput

    def test_infeasible_cap_raises(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        with pytest.raises(DesignSpaceError):
            dse.explore(power_cap_w=1.0)

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            DesignSpaceExplorer(128, 128).evaluate(8, 1, batch=0)
