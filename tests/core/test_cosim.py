"""Tests for the functional + timing co-simulation."""

import numpy as np
import pytest

from repro.core.accelerator import HeteroSVDAccelerator
from repro.core.config import HeteroSVDConfig
from repro.core.cosim import CoSimulator
from repro.core.timing import TimingSimulator
from repro.errors import NumericalError


def config(m=32, n=16, p_eng=4, **kwargs):
    return HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=1, **kwargs)


class TestCoSimFunctional:
    def test_matches_functional_accelerator(self, rng):
        cfg = config()
        a = rng.standard_normal((32, 16))
        cosim = CoSimulator(cfg).run(a)
        accel = HeteroSVDAccelerator(cfg).run(a)
        assert cosim.iterations == accel.iterations
        assert np.allclose(cosim.sigma, accel.sigma, rtol=1e-12)

    def test_matches_lapack(self, rng):
        cfg = config(m=24, n=24, p_eng=3)
        a = rng.standard_normal((24, 24))
        result = CoSimulator(cfg).run(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.sigma, s_ref, rtol=1e-7)
        assert result.converged

    def test_kernel_event_count(self, rng):
        cfg = config(fixed_iterations=2)
        a = rng.standard_normal((32, 16))
        result = CoSimulator(cfg).run(a)
        pairs = cfg.num_block_pairs
        assert result.kernel_events == 2 * pairs * cfg.orth_layers

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(NumericalError):
            CoSimulator(config()).run(rng.standard_normal((16, 32)))


class TestCoSimTiming:
    def test_validates_collapsed_recurrence(self, rng):
        # The timing simulator's tandem-queue shortcut must agree with
        # the brute-force per-layer interleaving.  (The co-simulation
        # has no DDR ramp-up, so compare steady iteration periods via a
        # fixed 2-iteration run without first-iteration doubling: use
        # relative agreement of total makespans at several P_eng.)
        for p_eng in (2, 4, 8):
            n = 32 if 32 % p_eng == 0 else (32 // p_eng + 1) * p_eng
            cfg = HeteroSVDConfig(
                m=32, n=n, p_eng=p_eng, p_task=1, fixed_iterations=3
            )
            a = rng.standard_normal((32, n))
            cosim = CoSimulator(cfg).run(a)
            sim = TimingSimulator(cfg).simulate(1)
            # The full timing sim includes DDR ramp-up and write-back;
            # the cosim should land within that envelope.
            assert cosim.makespan <= sim.latency * 1.05
            assert cosim.makespan >= sim.latency * 0.5

    def test_makespan_positive_and_ordered(self, rng):
        cfg = config(fixed_iterations=1)
        a = rng.standard_normal((32, 16))
        result = CoSimulator(cfg).run(a)
        assert result.makespan > 0
        assert result.trace.stage_time("tx") > 0
        assert result.trace.stage_time("orth_layer") > 0
        assert result.trace.stage_count("rx") == cfg.num_block_pairs

    def test_layer_utilization_bounded(self, rng):
        cfg = config(fixed_iterations=2)
        result = CoSimulator(cfg).run(rng.standard_normal((32, 16)))
        assert 0 < result.layer_utilization <= 1

    def test_codesign_not_slower_than_naive(self, rng):
        a = rng.standard_normal((32, 16))
        co = CoSimulator(config(fixed_iterations=2, use_codesign=True)).run(a)
        tr = CoSimulator(config(fixed_iterations=2, use_codesign=False)).run(a)
        assert co.makespan <= tr.makespan
        assert np.allclose(co.sigma, tr.sigma, rtol=1e-9)
