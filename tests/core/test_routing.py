"""Unit tests for dynamic-forwarding routing and PLIO assignment."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.placement import place
from repro.core.routing import ForwardingRule, assign_plios
from repro.errors import RoutingError


@pytest.fixture
def placement():
    return place(HeteroSVDConfig(m=64, n=64, p_eng=4, p_task=2))


class TestForwardingRule:
    def test_routes_to_first_layer(self, placement):
        rule = ForwardingRule(placement.tasks[0])
        for slot in range(4):
            dest = rule.route_orth(slot, 0)
            assert dest == placement.tasks[0].orth[(0, slot)]

    def test_sides_share_a_tile(self, placement):
        # Left and right column of a slot land on the same orth-AIE
        # (different input buffers).
        rule = ForwardingRule(placement.tasks[0])
        assert rule.route_orth(2, 0) == rule.route_orth(2, 1)

    def test_destinations_unique_per_slot(self, placement):
        rule = ForwardingRule(placement.tasks[0])
        destinations = rule.destinations()
        assert len(destinations) == 4
        assert len(set(destinations)) == 4

    def test_invalid_slot_or_side(self, placement):
        rule = ForwardingRule(placement.tasks[0])
        with pytest.raises(RoutingError):
            rule.route_orth(4, 0)
        with pytest.raises(RoutingError):
            rule.route_orth(0, 2)

    def test_norm_routing_round_robin(self, placement):
        rule = ForwardingRule(placement.tasks[0])
        norm = placement.tasks[0].norm
        assert rule.route_norm(0) == norm[0]
        assert rule.route_norm(len(norm)) == norm[0]


class TestPLIOAssignment:
    def test_six_per_task_no_overlap(self, placement):
        assignments = assign_plios(placement)
        all_indices = []
        for assignment in assignments.values():
            indices = assignment.all_plios()
            assert len(indices) == 6
            all_indices.extend(indices)
        assert len(all_indices) == len(set(all_indices))

    def test_structure(self, placement):
        assignment = assign_plios(placement)[0]
        assert len(assignment.orth_tx) == 2
        assert len(assignment.orth_rx) == 2

    def test_budget_enforced(self):
        # 26 tasks need 156 PLIOs == the budget; fabricating more than
        # the budget must fail at the config level already, so check
        # the routing-level guard with a shrunken device budget.
        from dataclasses import replace

        from repro.versal.device import VCK190

        small_device = replace(VCK190, max_plio=10)
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=4, p_task=2, device=small_device
        )
        placement = place(config)
        with pytest.raises(RoutingError):
            assign_plios(placement)
