"""Unit tests for resource accounting and Eq. 16 budget checks."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.resources import (
    ResourceUsage,
    check_budgets,
    estimate_resources,
    is_feasible,
)
from repro.errors import ResourceBudgetError


def config(p_eng=8, p_task=1, m=256):
    return HeteroSVDConfig(m=m, n=m, p_eng=p_eng, p_task=p_task)


class TestEstimateResources:
    def test_aie_is_sum_of_roles(self):
        usage = estimate_resources(config())
        assert usage.aie == usage.orth + usage.norm + usage.mem

    def test_plio_six_per_task(self):
        usage = estimate_resources(config(p_eng=4, p_task=9))
        assert usage.plio == 54

    def test_table6_uram_anchors(self):
        assert estimate_resources(config(p_eng=2, p_task=26)).uram == 416
        assert estimate_resources(config(p_eng=8, p_task=2)).uram == 32

    def test_utilization_keys(self):
        usage = estimate_resources(config())
        util = usage.utilization(config())
        assert set(util) == {"AIE", "PLIO", "BRAM", "URAM", "LUT"}
        assert all(0 <= v <= 1 for v in util.values())


class TestBudgets:
    def test_feasible_design_passes(self):
        cfg = config(p_eng=8, p_task=2)
        check_budgets(estimate_resources(cfg), cfg)  # no raise

    def test_uram_budget_violation(self):
        # 1024x1024 needs 240 URAM per task; two tasks bust the 463 cap.
        cfg = HeteroSVDConfig(m=1024, n=1024, p_eng=8, p_task=2)
        usage = ResourceUsage(
            orth=0, norm=0, mem=0, plio=12, bram=16, uram=480, luts=15000
        )
        with pytest.raises(ResourceBudgetError) as exc:
            check_budgets(usage, cfg)
        assert exc.value.resource == "URAM"
        assert exc.value.required == 480

    def test_aie_budget_violation(self):
        cfg = config()
        usage = ResourceUsage(
            orth=300, norm=80, mem=50, plio=6, bram=8, uram=16, luts=15000
        )
        with pytest.raises(ResourceBudgetError) as exc:
            check_budgets(usage, cfg)
        assert exc.value.resource == "AIE"


class TestIsFeasible:
    def test_known_good_points(self):
        for p_eng, p_task in [(2, 26), (4, 9), (6, 4), (8, 2)]:
            n = 256 if 256 % p_eng == 0 else (256 // p_eng + 1) * p_eng
            cfg = HeteroSVDConfig(m=256, n=n, p_eng=p_eng, p_task=p_task)
            assert is_feasible(cfg), (p_eng, p_task)

    def test_known_bad_points(self):
        # Geometrically impossible.
        assert not is_feasible(config(p_eng=8, p_task=3))
        # URAM-bound at 1024.
        assert not is_feasible(
            HeteroSVDConfig(m=1024, n=1024, p_eng=8, p_task=2)
        )

    def test_1024_single_task_feasible(self):
        # Table V's chosen 1024 configuration.
        assert is_feasible(HeteroSVDConfig(m=1024, n=1024, p_eng=8, p_task=1))
