"""Integration tests: the functional accelerator vs the golden model."""

import numpy as np
import pytest

from repro.core.accelerator import HeteroSVDAccelerator
from repro.core.config import HeteroSVDConfig
from repro.core.ordering_codesign import (
    codesign_dma_transfers,
    traditional_dma_transfers,
)
from repro.errors import NumericalError, SimulationError
from repro.linalg.reference import validate_svd


def make_accel(m, n, p_eng, **kwargs):
    return HeteroSVDAccelerator(
        HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=1, **kwargs)
    )


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "m,n,p_eng", [(16, 8, 2), (32, 16, 4), (24, 24, 3), (64, 32, 8)]
    )
    def test_singular_values_match_lapack(self, rng, m, n, p_eng):
        a = rng.standard_normal((m, n))
        result = make_accel(m, n, p_eng).run(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.sigma[: len(s_ref)], s_ref, rtol=1e-6)

    def test_full_factorization_with_v(self, rng):
        a = rng.standard_normal((32, 16))
        result = make_accel(32, 16, 4).run(a, accumulate_v=True)
        report = validate_svd(
            a, result.u[:, :16], result.sigma[:16], result.v[:, :16]
        )
        assert report.within(1e-5), report
        assert np.allclose(result.reconstruct(), a, atol=1e-6)

    def test_u_columns_unit_norm(self, rng):
        a = rng.standard_normal((24, 12))
        result = make_accel(24, 12, 2).run(a)
        norms = np.linalg.norm(result.u, axis=0)
        live = norms[result.sigma > 1e-12]
        assert np.allclose(live, 1.0, atol=1e-10)

    def test_sigma_descending(self, rng):
        a = rng.standard_normal((16, 8))
        result = make_accel(16, 8, 2).run(a)
        assert np.all(result.sigma[:-1] >= result.sigma[1:])

    def test_traditional_ordering_same_numerics(self, rng):
        a = rng.standard_normal((24, 12))
        codesign = make_accel(24, 12, 2, use_codesign=True).run(a)
        traditional = make_accel(24, 12, 2, use_codesign=False).run(a)
        assert np.allclose(codesign.sigma, traditional.sigma, rtol=1e-8)

    def test_convergence_history_decreases(self, rng):
        a = rng.standard_normal((32, 16))
        result = make_accel(32, 16, 4).run(a)
        assert result.converged
        assert result.convergence_history[-1] < result.convergence_history[0]

    def test_fixed_iterations_mode(self, rng):
        a = rng.standard_normal((16, 8))
        result = make_accel(16, 8, 2, fixed_iterations=2).run(a)
        assert result.iterations == 2

    def test_rank_deficient_input(self, rng):
        a = np.outer(rng.standard_normal(16), rng.standard_normal(8))
        result = make_accel(16, 8, 2).run(a)
        assert result.sigma[0] > 0
        assert np.allclose(result.sigma[1:], 0.0, atol=1e-8)

    def test_batch_processing(self, rng):
        accel = make_accel(16, 8, 2)
        mats = [rng.standard_normal((16, 8)) for _ in range(3)]
        results = accel.run_batch(mats)
        assert len(results) == 3
        for a, res in zip(mats, results):
            s_ref = np.linalg.svd(a, compute_uv=False)
            assert np.allclose(res.sigma, s_ref, rtol=1e-6)


class TestTransferAccounting:
    def test_codesign_dma_count(self, rng):
        a = rng.standard_normal((16, 8))
        accel = make_accel(16, 8, 2, fixed_iterations=2)
        result = accel.run(a)
        num = accel.config.num_block_pairs
        assert result.transfers.dma_transfers == (
            2 * num * codesign_dma_transfers(2)
        )

    def test_traditional_dma_count(self, rng):
        a = rng.standard_normal((16, 8))
        accel = make_accel(16, 8, 2, fixed_iterations=2, use_codesign=False)
        result = accel.run(a)
        num = accel.config.num_block_pairs
        assert result.transfers.dma_transfers == (
            2 * num * traditional_dma_transfers(2)
        )

    def test_codesign_reduces_dma_by_factor_k(self, rng):
        a = rng.standard_normal((32, 16))
        kwargs = dict(fixed_iterations=1)
        co = make_accel(32, 16, 4, **kwargs).run(a)
        trad = make_accel(32, 16, 4, use_codesign=False, **kwargs).run(a)
        assert trad.transfers.dma_transfers == (
            4 * co.transfers.dma_transfers
        )

    def test_packet_counts(self, rng):
        a = rng.standard_normal((16, 8))
        accel = make_accel(16, 8, 2, fixed_iterations=1)
        result = accel.run(a)
        expected = accel.config.num_block_pairs * accel.config.pair_cols
        assert result.transfers.packets_sent == expected
        assert result.transfers.packets_received == expected


class TestAcceleratorErrors:
    def test_wrong_shape_rejected(self, rng):
        accel = make_accel(16, 8, 2)
        with pytest.raises(NumericalError):
            accel.run(rng.standard_normal((8, 16)))

    def test_non_finite_rejected(self, rng):
        accel = make_accel(16, 8, 2)
        a = rng.standard_normal((16, 8))
        a[0, 0] = np.inf
        with pytest.raises(NumericalError):
            accel.run(a)

    def test_reconstruct_requires_v(self, rng):
        result = make_accel(16, 8, 2).run(rng.standard_normal((16, 8)))
        with pytest.raises(SimulationError):
            result.reconstruct()
