"""Tests for the warm-start incremental SVD."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalSVD
from repro.errors import NumericalError


def drifted(a, rng, scale=0.01):
    return a + scale * rng.standard_normal(a.shape)


class TestIncrementalSVD:
    def test_cold_solve_matches_lapack(self, rng):
        tracker = IncrementalSVD(precision=1e-9)
        a = rng.standard_normal((32, 16))
        result = tracker.update(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-7)

    def test_warm_update_is_accurate(self, rng):
        tracker = IncrementalSVD(precision=1e-9)
        a = rng.standard_normal((32, 16))
        tracker.update(a)
        a2 = drifted(a, rng)
        result = tracker.update(a2)
        s_ref = np.linalg.svd(a2, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-7)
        assert np.allclose(result.reconstruct(), a2, atol=1e-7)

    def test_warm_start_saves_sweeps(self, rng):
        tracker = IncrementalSVD(precision=1e-8)
        a = rng.standard_normal((48, 24))
        cold = tracker.update(a)
        warm_counts = []
        for _ in range(4):
            a = drifted(a, rng, scale=0.005)
            warm_counts.append(tracker.update(a).sweeps)
        # Each warm update must be substantially cheaper than the cold
        # solve (the whole point of tracking).
        assert max(warm_counts) <= cold.sweeps - 2

    def test_identical_resubmission_converges_in_one_sweep(self, rng):
        tracker = IncrementalSVD(precision=1e-8)
        a = rng.standard_normal((24, 12))
        tracker.update(a)
        again = tracker.update(a)
        assert again.sweeps == 1

    def test_large_drift_still_correct(self, rng):
        tracker = IncrementalSVD(precision=1e-8)
        a = rng.standard_normal((24, 12))
        tracker.update(a)
        b = rng.standard_normal((24, 12))  # unrelated matrix
        result = tracker.update(b)
        s_ref = np.linalg.svd(b, compute_uv=False)
        assert np.allclose(result.singular_values, s_ref, rtol=1e-6)

    def test_history_recorded(self, rng):
        tracker = IncrementalSVD()
        a = rng.standard_normal((16, 8))
        tracker.update(a)
        tracker.update(drifted(a, rng))
        assert len(tracker.history) == 2

    def test_reset_forgets_state(self, rng):
        tracker = IncrementalSVD()
        tracker.update(rng.standard_normal((16, 8)))
        assert tracker.warm
        tracker.reset()
        assert not tracker.warm
        assert tracker.history == []

    def test_width_change_rejected(self, rng):
        tracker = IncrementalSVD()
        tracker.update(rng.standard_normal((16, 8)))
        with pytest.raises(NumericalError):
            tracker.update(rng.standard_normal((16, 10)))

    def test_invalid_inputs(self, rng):
        tracker = IncrementalSVD()
        with pytest.raises(NumericalError):
            tracker.update(rng.standard_normal((8, 16)))
        with pytest.raises(NumericalError):
            tracker.update(rng.standard_normal((16, 7)))
