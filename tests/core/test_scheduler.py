"""Tests for the heterogeneous batch scheduler."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.scheduler import BatchScheduler, TaskSpec
from repro.errors import ConfigurationError


@pytest.fixture
def scheduler():
    config = HeteroSVDConfig(m=128, n=128, p_eng=4, p_task=4)
    return BatchScheduler(config)


def specs(sizes):
    return [TaskSpec(m=m, n=n, task_id=i) for i, (m, n) in enumerate(sizes)]


class TestTaskCost:
    def test_larger_tasks_cost_more(self, scheduler):
        small = scheduler.task_cost(TaskSpec(64, 64))
        large = scheduler.task_cost(TaskSpec(128, 128))
        assert large > small

    def test_cost_cached(self, scheduler):
        scheduler.task_cost(TaskSpec(64, 64))
        assert (64, 64) in scheduler._cost_cache

    def test_non_tiling_width_padded(self, scheduler):
        # n = 66 pads to 68 with k = 4; must not raise.
        assert scheduler.task_cost(TaskSpec(64, 66)) > 0


class TestSchedule:
    def test_all_tasks_scheduled_once(self, scheduler):
        batch = specs([(64, 64)] * 7 + [(128, 128)] * 3)
        plan = scheduler.schedule(batch)
        assert len(plan.tasks) == 10
        assert sorted(t.spec.task_id for t in plan.tasks) == list(range(10))

    def test_no_overlap_within_pipeline(self, scheduler):
        batch = specs([(64, 64)] * 9)
        plan = scheduler.schedule(batch)
        for pipe in range(4):
            tasks = plan.pipeline_tasks(pipe)
            for earlier, later in zip(tasks, tasks[1:]):
                assert later.start >= earlier.end - 1e-12

    def test_makespan_is_max_pipeline_time(self, scheduler):
        batch = specs([(64, 64)] * 6)
        plan = scheduler.schedule(batch)
        assert plan.makespan == max(plan.pipeline_times)
        assert plan.makespan == max(t.end for t in plan.tasks)

    def test_lpt_beats_fifo_on_adversarial_order(self, scheduler):
        # Small tasks first, then large: FIFO piles the large ones onto
        # pipelines unevenly; LPT balances.
        batch = specs([(32, 32)] * 8 + [(128, 128)] * 5)
        comparison = scheduler.compare_policies(batch)
        assert comparison["lpt"] <= comparison["fifo"]

    def test_balance_metric(self, scheduler):
        batch = specs([(64, 64)] * 8)  # perfectly divisible
        plan = scheduler.schedule(batch)
        assert plan.balance == pytest.approx(1.0)

    def test_single_pipeline_serializes(self):
        config = HeteroSVDConfig(m=64, n=64, p_eng=4, p_task=1)
        scheduler = BatchScheduler(config)
        batch = specs([(64, 64)] * 3)
        plan = scheduler.schedule(batch)
        cost = scheduler.task_cost(TaskSpec(64, 64))
        assert plan.makespan == pytest.approx(3 * cost)

    def test_empty_batch_rejected(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.schedule([])

    def test_unknown_policy_rejected(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.schedule(specs([(64, 64)]), policy="random")
