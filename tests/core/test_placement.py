"""Unit tests for the AIE placement strategy (Fig. 5)."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.placement import max_feasible_tasks, place
from repro.errors import PlacementError
from repro.versal.tile import TileKind


def config(p_eng=8, p_task=1, m=256):
    n = m if m % p_eng == 0 else (m // p_eng + 1) * p_eng
    return HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=p_task)


class TestPlacementCounts:
    @pytest.mark.parametrize("p_eng", [1, 2, 4, 6, 8])
    def test_orth_count_matches_table1(self, p_eng):
        placement = place(config(p_eng=p_eng))
        assert placement.num_orth == p_eng * (2 * p_eng - 1)

    @pytest.mark.parametrize("p_task", [1, 2, 4])
    def test_counts_scale_with_tasks(self, p_task):
        placement = place(config(p_eng=4, p_task=p_task))
        assert placement.num_orth == 28 * p_task
        assert placement.num_norm == 4 * p_task
        assert placement.num_plio == 6 * p_task

    def test_every_layer_has_k_slots(self):
        placement = place(config(p_eng=6))
        task = placement.tasks[0]
        layers = 2 * 6 - 1
        for layer in range(layers):
            slots = [s for (l, s) in task.orth if l == layer]
            assert sorted(slots) == list(range(6))

    def test_aie_total_is_sum_of_roles(self):
        placement = place(config(p_eng=8, p_task=2))
        assert placement.num_aie == (
            placement.num_orth + placement.num_norm + placement.num_mem
        )

    def test_array_tile_kinds_agree_with_counts(self):
        placement = place(config(p_eng=4, p_task=2))
        array = placement.array
        assert array.count_of_kind(TileKind.ORTH) == placement.num_orth
        assert array.count_of_kind(TileKind.NORM) == placement.num_norm
        assert array.count_of_kind(TileKind.MEM) == placement.num_mem


class TestPlacementGeometry:
    def test_no_orth_on_boundary_rows(self):
        placement = place(config(p_eng=8))
        for coord in placement.tasks[0].orth.values():
            assert 1 <= coord[0] <= 6

    def test_no_tile_double_booked(self):
        placement = place(config(p_eng=8, p_task=2))
        seen = set()
        for task in placement.tasks:
            coords = (
                list(task.orth.values()) + task.mem + task.norm
            )
            for coord in coords:
                assert coord not in seen
                seen.add(coord)

    def test_layers_within_a_chunk_are_contiguous_rows(self):
        placement = place(config(p_eng=2))
        task = placement.tasks[0]
        # k = 2: 3 layers fit one lane; rows must be consecutive.
        rows = sorted({task.orth[(l, 0)][0] for l in range(3)})
        assert rows == [rows[0], rows[0] + 1, rows[0] + 2]

    def test_vertical_stacking_of_small_tasks(self):
        # k = 2 tasks take 3 rows; two tasks share a 2-column lane.
        placement = place(config(p_eng=2, p_task=2))
        lanes0 = placement.tasks[0].lanes
        lanes1 = placement.tasks[1].lanes
        assert lanes0 == lanes1

    def test_multi_chunk_tasks_use_multiple_lanes(self):
        placement = place(config(p_eng=8))  # 15 layers -> 3 chunks
        assert len(placement.tasks[0].lanes) == 3

    def test_mem_aies_present_for_multi_chunk(self):
        placement = place(config(p_eng=8))
        # 2 crossings x 2k + (k-1) wrap buffers.
        assert placement.tasks[0].n_mem == 2 * 16 + 7

    def test_single_chunk_mem_is_wrap_buffers_only(self):
        placement = place(config(p_eng=2))
        assert placement.tasks[0].n_mem == 1  # k - 1

    def test_utilization_fraction(self):
        placement = place(config(p_eng=8, p_task=2))
        assert 0 < placement.aie_utilization() < 1


class TestFeasibilityLimits:
    def test_table6_max_tasks(self):
        # The paper's Table VI design points are the placement maxima
        # combined with the resource budgets; geometry alone gives these.
        expected = {2: 26, 4: 9, 6: 4, 8: 2}
        for p_eng, max_tasks in expected.items():
            cfg = config(p_eng=p_eng)
            found = max_feasible_tasks(cfg)
            assert found >= max_tasks, (p_eng, found)

    def test_p8_three_tasks_do_not_fit(self):
        with pytest.raises(PlacementError):
            place(config(p_eng=8, p_task=3))

    def test_p6_five_tasks_do_not_fit(self):
        with pytest.raises(PlacementError):
            place(config(p_eng=6, p_task=5))

    def test_small_array_rejected(self):
        from repro.versal.array import AIEArray

        tiny = AIEArray(rows=2, cols=10)
        with pytest.raises(PlacementError):
            place(config(p_eng=2), array=tiny)
