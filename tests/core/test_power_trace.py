"""Tests for the time-resolved power trace."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.power_trace import (
    energy_efficiency_tasks_per_joule,
    trace_task_power,
)


@pytest.fixture(scope="module")
def config():
    return HeteroSVDConfig(m=128, n=128, p_eng=4, p_task=1,
                           fixed_iterations=4)


@pytest.fixture(scope="module")
def trace(config):
    return trace_task_power(config)


class TestPowerTrace:
    def test_phases_cover_task_contiguously(self, trace):
        for earlier, later in zip(trace.phases, trace.phases[1:]):
            assert later.start == pytest.approx(earlier.end)
        assert trace.phases[0].start == 0.0

    def test_phase_structure(self, trace, config):
        names = [p.name for p in trace.phases]
        assert names[: config.fixed_iterations] == [
            f"orth_iter{i}" for i in range(config.fixed_iterations)
        ]
        assert names[-2:] == ["normalization", "writeback"]

    def test_orth_is_the_peak(self, trace):
        by_name = {p.name: p.power_w for p in trace.phases}
        assert trace.peak_power_w == by_name["orth_iter1"]
        assert by_name["normalization"] < by_name["orth_iter1"]
        assert by_name["writeback"] < by_name["normalization"]

    def test_first_iteration_slightly_lower(self, trace):
        by_name = {p.name: p.power_w for p in trace.phases}
        assert by_name["orth_iter0"] < by_name["orth_iter1"]

    def test_average_below_steady(self, trace):
        # Idle/norm phases pull the mean under the steady-state figure.
        assert trace.average_power_w <= trace.steady_power_w
        assert trace.average_power_w > 0

    def test_energy_consistency(self, trace):
        assert trace.total_energy_j == pytest.approx(
            sum(p.energy_j for p in trace.phases)
        )
        assert trace.total_energy_j == pytest.approx(
            trace.average_power_w * trace.makespan
        )

    def test_energy_grows_with_size(self):
        small = trace_task_power(
            HeteroSVDConfig(m=128, n=128, p_eng=8, fixed_iterations=6)
        )
        large = trace_task_power(
            HeteroSVDConfig(m=512, n=512, p_eng=8, fixed_iterations=6)
        )
        assert large.total_energy_j > 10 * small.total_energy_j

    def test_tasks_per_joule(self, config):
        efficiency = energy_efficiency_tasks_per_joule(config)
        trace = trace_task_power(config)
        assert efficiency == pytest.approx(1.0 / trace.total_energy_j)
