"""Tests for multi-pipeline functional execution."""

import numpy as np
import pytest

from repro.core.accelerator import HeteroSVDAccelerator
from repro.core.config import HeteroSVDConfig
from repro.core.placement import place
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def two_pipe_config():
    return HeteroSVDConfig(m=32, n=32, p_eng=4, p_task=2, precision=1e-8)


class TestMultiPipeline:
    def test_pipelines_route_to_disjoint_tiles(self, two_pipe_config):
        placement = place(two_pipe_config)
        accel0 = HeteroSVDAccelerator(
            two_pipe_config, placement=placement, pipeline=0
        )
        accel1 = HeteroSVDAccelerator(
            two_pipe_config, placement=placement, pipeline=1
        )
        dest0 = set(accel0._forwarding.destinations())
        dest1 = set(accel1._forwarding.destinations())
        assert dest0.isdisjoint(dest1)

    def test_both_pipelines_compute_correctly(self, two_pipe_config, rng):
        placement = place(two_pipe_config)
        for pipeline in (0, 1):
            accel = HeteroSVDAccelerator(
                two_pipe_config, placement=placement, pipeline=pipeline
            )
            a = rng.standard_normal((32, 32))
            result = accel.run(a)
            s_ref = np.linalg.svd(a, compute_uv=False)
            assert np.allclose(result.sigma, s_ref, rtol=1e-6)

    def test_batch_distributes_round_robin(self, two_pipe_config, rng):
        accel = HeteroSVDAccelerator(two_pipe_config)
        mats = [rng.standard_normal((32, 32)) for _ in range(4)]
        results = accel.run_batch(mats)
        assert len(results) == 4
        for a, res in zip(mats, results):
            s_ref = np.linalg.svd(a, compute_uv=False)
            assert np.allclose(res.sigma, s_ref, rtol=1e-6)

    def test_out_of_range_pipeline_rejected(self, two_pipe_config):
        with pytest.raises(SimulationError):
            HeteroSVDAccelerator(two_pipe_config, pipeline=2)
        with pytest.raises(SimulationError):
            HeteroSVDAccelerator(two_pipe_config, pipeline=-1)
