"""Unit tests for the HeteroSVD configuration (Table I)."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.errors import ConfigurationError
from repro.units import mhz


def make(m=256, n=256, p_eng=8, p_task=1, **kwargs):
    return HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=p_task, **kwargs)


class TestDerivedStructure:
    def test_block_width_equals_p_eng(self):
        assert make(p_eng=4).block_width == 4

    def test_block_counts(self):
        config = make(m=256, n=256, p_eng=8)
        assert config.n_blocks == 32
        assert config.num_block_pairs == 32 * 31 // 2
        assert config.pair_cols == 16

    def test_table1_orth_aie_formula(self):
        # Table I: number of orth-AIE = n(2n-1)k with n = P_eng.
        for p_eng in (1, 2, 4, 8, 11):
            config = make(n=264, p_eng=p_eng)
            assert config.orth_aies_per_task == p_eng * (2 * p_eng - 1)
            assert config.orth_layers == 2 * p_eng - 1

    def test_table1_norm_aie_formula(self):
        assert make(p_eng=6, n=258).norm_aies_per_task == 6

    def test_table1_plio_formula(self):
        # Table I: number of PLIO = 6k with k = P_task.
        config = make(p_task=9, p_eng=4)
        assert config.total_plios == 54

    def test_with_tasks_and_frequency(self):
        config = make(p_task=1)
        more = config.with_tasks(4)
        assert more.p_task == 4
        assert more.m == config.m
        faster = config.with_frequency(mhz(400))
        assert faster.pl_frequency_hz == mhz(400)

    def test_describe_mentions_key_parameters(self):
        text = make(p_eng=8, p_task=2).describe()
        assert "P_eng=8" in text
        assert "P_task=2" in text


class TestValidation:
    def test_p_eng_range(self):
        with pytest.raises(ConfigurationError):
            make(p_eng=0)
        with pytest.raises(ConfigurationError):
            make(p_eng=12, n=264)

    def test_p_task_range(self):
        with pytest.raises(ConfigurationError):
            make(p_task=0)
        with pytest.raises(ConfigurationError):
            make(p_task=27)

    def test_divisibility(self):
        with pytest.raises(ConfigurationError):
            make(n=130, p_eng=4)

    def test_at_least_two_blocks(self):
        with pytest.raises(ConfigurationError):
            make(n=8, p_eng=8)

    def test_frequency_range(self):
        with pytest.raises(ConfigurationError):
            make(pl_frequency_hz=mhz(100))
        with pytest.raises(ConfigurationError):
            make(pl_frequency_hz=mhz(600))

    def test_fixed_iterations_validated(self):
        with pytest.raises(ConfigurationError):
            make(fixed_iterations=0)

    def test_precision_validated(self):
        with pytest.raises(ConfigurationError):
            make(precision=0.0)
        with pytest.raises(ConfigurationError):
            make(precision=2.0)

    def test_tiny_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            make(m=0)
