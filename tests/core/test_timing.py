"""Tests for the cycle-approximate timing simulation and its agreement
with the analytical model (the Table IV / Table V experiment)."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import PerformanceModel
from repro.core.timing import TimingSimulator
from repro.errors import SimulationError
from repro.units import mhz


def config(m=128, n=128, p_eng=4, p_task=1, **kwargs):
    kwargs.setdefault("pl_frequency_hz", mhz(208.3))
    return HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=p_task, **kwargs)


class TestModelAgreement:
    @pytest.mark.parametrize("p_eng", [2, 4, 8])
    @pytest.mark.parametrize("m", [128, 256])
    def test_single_iteration_error_within_paper_band(self, m, p_eng):
        # Table IV reports <= 3.03% error; we allow <= 10% for the
        # reproduction (our 'board' is itself a model).
        cfg = config(m=m, n=m, p_eng=p_eng, fixed_iterations=1)
        measured = TimingSimulator(cfg).measure_iteration_time()
        modelled = PerformanceModel(cfg).iteration_time()
        error = abs(modelled - measured) / measured
        assert error < 0.10, (m, p_eng, error)

    def test_task_time_error_small(self):
        cfg = config(m=128, n=128, p_eng=8, fixed_iterations=6)
        sim = TimingSimulator(cfg).simulate(1)
        modelled = PerformanceModel(cfg).task_time()
        error = abs(modelled - sim.latency) / sim.latency
        assert error < 0.15

    def test_naive_dataflow_is_slower(self):
        co = config(p_eng=8, fixed_iterations=1, pl_frequency_hz=mhz(450))
        naive = config(
            p_eng=8,
            fixed_iterations=1,
            pl_frequency_hz=mhz(450),
            use_codesign=False,
        )
        t_co = TimingSimulator(co).measure_iteration_time()
        t_naive = TimingSimulator(naive).measure_iteration_time()
        assert t_naive >= t_co


class TestSimulationBehaviour:
    def test_first_iteration_pays_ddr(self):
        cfg = config(fixed_iterations=3)
        result = TimingSimulator(cfg).simulate(1)
        assert result.iteration_times[0] > result.iteration_times[1]

    def test_steady_iterations_stable(self):
        cfg = config(fixed_iterations=4)
        result = TimingSimulator(cfg).simulate(1)
        later = result.iteration_times[1:]
        assert max(later) / min(later) < 1.05

    def test_makespan_covers_all_tasks(self):
        cfg = config(p_eng=4, p_task=2, fixed_iterations=1)
        result = TimingSimulator(cfg).simulate(5)
        assert result.makespan >= max(result.task_times)
        assert len(result.task_times) == 5

    def test_parallel_tasks_improve_makespan(self):
        single = config(m=128, n=128, p_eng=4, p_task=1, fixed_iterations=1)
        multi = config(m=128, n=128, p_eng=4, p_task=4, fixed_iterations=1)
        t1 = TimingSimulator(single).simulate(8).makespan
        t4 = TimingSimulator(multi).simulate(8).makespan
        assert t4 < t1 / 2

    def test_throughput_definition(self):
        cfg = config(fixed_iterations=1)
        result = TimingSimulator(cfg).simulate(3)
        assert result.throughput == pytest.approx(3 / result.makespan)

    def test_latency_is_first_task(self):
        cfg = config(fixed_iterations=1)
        result = TimingSimulator(cfg).simulate(2)
        assert result.latency == result.task_times[0]

    def test_utilizations_bounded(self):
        cfg = config(fixed_iterations=2)
        result = TimingSimulator(cfg).simulate(1)
        assert 0 <= result.orth_utilization <= 1
        assert 0 <= result.plio_utilization <= 1

    def test_stage_durations_layer_count(self):
        sim = TimingSimulator(config(p_eng=4))
        stages = sim.stage_durations()
        assert len(stages) == 7
        assert all(s > 0 for s in stages)

    def test_crossing_layers_slower(self):
        # P_eng = 8 -> 15 layers in chunks of 6: layers 5 and 11 pay the
        # crossing DMA.
        sim = TimingSimulator(config(p_eng=8))
        stages = sim.stage_durations()
        assert stages[5] > stages[0]
        assert stages[11] > stages[0]

    def test_rejects_zero_tasks(self):
        with pytest.raises(SimulationError):
            TimingSimulator(config()).simulate(0)

    def test_measure_restores_config(self):
        cfg = config(fixed_iterations=6)
        sim = TimingSimulator(cfg)
        sim.measure_iteration_time()
        assert sim.config.fixed_iterations == 6
