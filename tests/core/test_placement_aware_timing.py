"""Tests for the distance-aware (placement-informed) timing refinement."""


from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import PerformanceModel
from repro.core.placement import place
from repro.core.timing import TimingSimulator


def config(p_eng=8, m=128):
    return HeteroSVDConfig(m=m, n=m, p_eng=p_eng, p_task=1,
                           fixed_iterations=1)


class TestPlacementAwareStages:
    def test_crossing_layers_pay_route_latency(self):
        cfg = config(p_eng=8)  # 15 layers -> 2 crossings
        placement = place(cfg)
        flat = TimingSimulator(cfg).stage_durations()
        aware = TimingSimulator(cfg, placement=placement).stage_durations()
        # Crossing layers (5 and 11) get slower; the rest are unchanged.
        assert aware[5] > flat[5]
        assert aware[11] > flat[11]
        for i in (0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 12, 13, 14):
            assert aware[i] == flat[i]

    def test_single_chunk_designs_unaffected(self):
        cfg = config(p_eng=2)
        placement = place(cfg)
        flat = TimingSimulator(cfg).stage_durations()
        aware = TimingSimulator(cfg, placement=placement).stage_durations()
        assert aware == flat

    def test_model_and_sim_stay_consistent(self):
        cfg = config(p_eng=8)
        placement = place(cfg)
        model = PerformanceModel(cfg, placement=placement)
        sim = TimingSimulator(cfg, placement=placement)
        measured = sim.measure_iteration_time()
        modelled = model.iteration_time()
        assert abs(modelled - measured) / measured < 0.10

    def test_refinement_is_small(self):
        # The head latency is a refinement, not a regime change: the
        # placement-aware iteration time stays within 5% of the flat one.
        cfg = config(p_eng=8)
        placement = place(cfg)
        flat = TimingSimulator(cfg).measure_iteration_time()
        aware = TimingSimulator(cfg, placement=placement).measure_iteration_time()
        assert aware >= flat
        assert (aware - flat) / flat < 0.05
