"""Unit tests for the dataflow movement classification (Fig. 3-4)."""


from repro.core.dataflow import (
    DataflowMode,
    Movement,
    MovementKind,
    classify_movement,
    movement_is_dma,
)
from repro.versal.communication import TransferKind


def move(kind, into_even, shifted=False):
    return Movement(column=0, kind=kind, into_even_row=into_even, shifted=shifted)


class TestNaiveDataflow:
    def test_into_even_rows_always_dma(self):
        # Fig. 4a: mirrored floorplan blocks every into-even movement.
        for kind in MovementKind:
            assert (
                classify_movement(DataflowMode.NAIVE, move(kind, into_even=True))
                is TransferKind.DMA
            )

    def test_into_odd_rows_neighbour(self):
        for kind in MovementKind:
            assert (
                classify_movement(DataflowMode.NAIVE, move(kind, into_even=False))
                is TransferKind.NEIGHBOR
            )


class TestRelocatedDataflow:
    def test_wrap_is_always_dma(self):
        # The long first-to-last-column transfer survives the co-design.
        for into_even in (True, False):
            assert (
                classify_movement(
                    DataflowMode.RELOCATED, move(MovementKind.WRAP, into_even)
                )
                is TransferKind.DMA
            )

    def test_straight_and_left_are_neighbour(self):
        for kind in (MovementKind.STRAIGHT, MovementKind.LEFT):
            for into_even in (True, False):
                assert (
                    classify_movement(
                        DataflowMode.RELOCATED, move(kind, into_even)
                    )
                    is TransferKind.NEIGHBOR
                )


class TestPredicate:
    def test_movement_is_dma(self):
        assert movement_is_dma(
            DataflowMode.NAIVE, move(MovementKind.STRAIGHT, into_even=True)
        )
        assert not movement_is_dma(
            DataflowMode.RELOCATED, move(MovementKind.LEFT, into_even=True)
        )
