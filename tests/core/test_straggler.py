"""Tests for the straggler (layer slowdown) what-if analysis."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.timing import TimingSimulator
from repro.errors import SimulationError
from repro.units import mhz


def config(p_eng=8, freq=450.0):
    return HeteroSVDConfig(
        m=128, n=128, p_eng=p_eng, p_task=1,
        pl_frequency_hz=mhz(freq), fixed_iterations=2,
    )


class TestStragglerAnalysis:
    def test_slowdown_applies_to_chosen_layer(self):
        cfg = config()
        base = TimingSimulator(cfg).stage_durations()
        slowed = TimingSimulator(cfg, layer_slowdown={3: 2.0}).stage_durations()
        assert slowed[3] == pytest.approx(2 * base[3])
        assert slowed[0] == base[0]

    def test_straggler_extends_makespan(self):
        cfg = config()
        base = TimingSimulator(cfg).simulate(1).latency
        slowed = TimingSimulator(
            cfg, layer_slowdown={0: 4.0}
        ).simulate(1).latency
        assert slowed > base

    def test_hidden_when_streaming_bound(self):
        # At a slow PL clock the pipeline is streaming-bound: a mild
        # straggler hides behind the Tx interval — only the one-off
        # traversal of each pair grows, a <0.1% effect.
        cfg = config(freq=208.3)
        base = TimingSimulator(cfg).simulate(1).latency
        slowed = TimingSimulator(
            cfg, layer_slowdown={2: 1.2}
        ).simulate(1).latency
        assert slowed >= base
        assert (slowed - base) / base < 1e-3

    def test_severe_straggler_becomes_bottleneck(self):
        # A 20x straggler exceeds the Tx interval and paces the pipeline.
        cfg = config(freq=208.3)
        base = TimingSimulator(cfg).simulate(1).latency
        slowed = TimingSimulator(
            cfg, layer_slowdown={2: 20.0}
        ).simulate(1).latency
        assert slowed > 1.2 * base

    def test_validation(self):
        cfg = config()
        with pytest.raises(SimulationError):
            TimingSimulator(cfg, layer_slowdown={99: 2.0})
        with pytest.raises(SimulationError):
            TimingSimulator(cfg, layer_slowdown={0: 0.5})

    def test_multiple_stragglers(self):
        cfg = config()
        sim = TimingSimulator(cfg, layer_slowdown={0: 2.0, 5: 3.0})
        stages = sim.stage_durations()
        base = TimingSimulator(cfg).stage_durations()
        assert stages[0] == pytest.approx(2 * base[0])
        assert stages[5] == pytest.approx(3 * base[5])
