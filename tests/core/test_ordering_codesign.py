"""Unit tests for the movement schedule and DMA-count analytics (Fig. 3)."""

import pytest

from repro.core.dataflow import DataflowMode, MovementKind
from repro.core.ordering_codesign import (
    MovementSchedule,
    codesign_dma_transfers,
    dma_reduction_factor,
    traditional_dma_transfers,
)
from repro.errors import ConfigurationError


class TestClosedForms:
    @pytest.mark.parametrize("k", range(1, 17))
    def test_traditional_formula(self, k):
        assert traditional_dma_transfers(k) == 2 * k * (k - 1)

    @pytest.mark.parametrize("k", range(1, 17))
    def test_codesign_formula(self, k):
        assert codesign_dma_transfers(k) == 2 * (k - 1)

    def test_paper_fig3_example(self):
        # m x 6 matrix (k = 3): 12 DMAs reduced to 4.
        assert traditional_dma_transfers(3) == 12
        assert codesign_dma_transfers(3) == 4

    @pytest.mark.parametrize("k", range(2, 12))
    def test_reduction_factor_is_k(self, k):
        assert dma_reduction_factor(k) == pytest.approx(k)

    def test_k1_has_no_dma(self):
        assert traditional_dma_transfers(1) == 0
        assert codesign_dma_transfers(1) == 0
        assert dma_reduction_factor(1) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            traditional_dma_transfers(0)
        with pytest.raises(ConfigurationError):
            codesign_dma_transfers(-1)


class TestMovementSchedule:
    @pytest.mark.parametrize("k", range(1, 12))
    def test_schedule_reproduces_traditional_count(self, k):
        schedule = MovementSchedule(k=k, shifting=False)
        assert schedule.dma_count(DataflowMode.NAIVE) == traditional_dma_transfers(k)

    @pytest.mark.parametrize("k", range(1, 12))
    def test_schedule_reproduces_codesign_count(self, k):
        schedule = MovementSchedule(k=k, shifting=True)
        assert schedule.dma_count(DataflowMode.RELOCATED) == codesign_dma_transfers(k)

    def test_dimensions(self):
        schedule = MovementSchedule(k=4)
        assert schedule.n_layers == 7
        assert schedule.n_transitions == 6
        assert len(schedule.transitions) == 6

    def test_each_transition_moves_all_columns(self):
        schedule = MovementSchedule(k=5)
        for transition in schedule.transitions:
            assert len(transition.movements) == 10

    def test_one_wrap_per_transition(self):
        schedule = MovementSchedule(k=6)
        for transition in schedule.transitions:
            wraps = [
                m for m in transition.movements if m.kind is MovementKind.WRAP
            ]
            assert len(wraps) == 1

    def test_shifts_only_into_even_rows(self):
        schedule = MovementSchedule(k=4, shifting=True, first_row=1)
        for transition in schedule.transitions:
            assert transition.shifted == transition.into_even_row

    def test_no_shifting_when_disabled(self):
        schedule = MovementSchedule(k=4, shifting=False)
        assert all(not t.shifted for t in schedule.transitions)

    def test_parity_alternates(self):
        schedule = MovementSchedule(k=4, first_row=1)
        parities = [t.into_even_row for t in schedule.transitions]
        assert parities == [True, False, True, False, True, False]

    def test_first_row_anchors_parity(self):
        even_start = MovementSchedule(k=3, first_row=0)
        odd_start = MovementSchedule(k=3, first_row=1)
        assert (
            even_start.transitions[0].into_even_row
            != odd_start.transitions[0].into_even_row
        )

    def test_parity_flip_preserves_total_count(self):
        # Starting on an even row changes *which* transitions pay DMA,
        # not how many (k-1 of each parity either way for odd layer
        # counts); totals match the closed form for the default anchor.
        schedule = MovementSchedule(k=5, shifting=False, first_row=1)
        assert schedule.dma_count(DataflowMode.NAIVE) == 40

    def test_neighbor_count_complement(self):
        schedule = MovementSchedule(k=4)
        total = 2 * 4 * schedule.n_transitions
        for mode in DataflowMode:
            assert (
                schedule.dma_count(mode) + schedule.neighbor_count(mode)
                == total
            )

    def test_memory_overhead_tracks_dma(self):
        schedule = MovementSchedule(k=4)
        assert schedule.dma_memory_overhead_columns(
            DataflowMode.RELOCATED
        ) == schedule.dma_count(DataflowMode.RELOCATED)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MovementSchedule(k=0)
        with pytest.raises(ConfigurationError):
            MovementSchedule(k=2, first_row=-1)
