"""Unit tests for the power model (Table VI fit)."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.power import PowerModel
from repro.core.resources import estimate_resources
from repro.errors import ConfigurationError
from repro.units import mhz

#: Table VI: (P_eng, P_task) -> measured watts at 208.3 MHz.
TABLE6_POWER = {
    (2, 26): 44.16,
    (4, 9): 34.63,
    (6, 4): 30.79,
    (8, 2): 26.06,
}


def design(p_eng, p_task):
    n = 256 if 256 % p_eng == 0 else (256 // p_eng + 1) * p_eng
    return HeteroSVDConfig(
        m=256, n=n, p_eng=p_eng, p_task=p_task,
        pl_frequency_hz=mhz(208.3),
    )


class TestTable6Fit:
    @pytest.mark.parametrize("point,expected", TABLE6_POWER.items())
    def test_within_fifteen_percent(self, point, expected):
        cfg = design(*point)
        usage = estimate_resources(cfg)
        power = PowerModel().estimate(cfg, usage).total
        assert abs(power - expected) / expected < 0.15, (point, power)

    def test_power_ordering_matches_paper(self):
        # Higher P_task (more URAM) costs more power.
        powers = []
        for point in [(2, 26), (4, 9), (6, 4), (8, 2)]:
            cfg = design(*point)
            powers.append(
                PowerModel().estimate(cfg, estimate_resources(cfg)).total
            )
        assert powers == sorted(powers, reverse=True)

    def test_under_39w_envelope_for_low_parallelism(self):
        # The paper's headline: HeteroSVD configurations < 39 W.
        cfg = design(8, 1)
        power = PowerModel().estimate(cfg, estimate_resources(cfg)).total
        assert power < 39.0


class TestPowerModel:
    def test_decomposition_sums(self):
        cfg = design(4, 2)
        est = PowerModel().estimate(cfg, estimate_resources(cfg))
        assert est.total == pytest.approx(
            est.static + est.pl_dynamic + est.aie + est.uram + est.bram
        )

    def test_pl_dynamic_scales_with_frequency(self):
        usage = estimate_resources(design(4, 1))
        slow = PowerModel().estimate(design(4, 1), usage)
        fast_cfg = HeteroSVDConfig(
            m=256, n=256, p_eng=4, p_task=1, pl_frequency_hz=mhz(416.6)
        )
        fast = PowerModel().estimate(fast_cfg, usage)
        assert fast.pl_dynamic == pytest.approx(2 * slow.pl_dynamic)
        assert fast.aie == slow.aie

    def test_energy_efficiency(self):
        cfg = design(2, 26)
        usage = estimate_resources(cfg)
        model = PowerModel()
        ee = model.energy_efficiency(cfg, usage, throughput_tasks_per_s=100.0)
        assert ee == pytest.approx(100.0 / model.estimate(cfg, usage).total)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static_w=-1.0)

    def test_custom_coefficients(self):
        model = PowerModel(static_w=0, pl_dynamic_ref_w=0, aie_w=1.0,
                           uram_w=0, bram_w=0)
        cfg = design(8, 1)
        usage = estimate_resources(cfg)
        assert model.estimate(cfg, usage).total == pytest.approx(usage.aie)
