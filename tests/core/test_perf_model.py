"""Unit tests for the analytical performance model (Eqs. 8-14)."""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import (
    PerformanceModel,
    estimated_iterations,
)
from repro.units import mhz


def model(m=128, n=128, p_eng=4, p_task=1, **kwargs):
    return PerformanceModel(
        HeteroSVDConfig(m=m, n=n, p_eng=p_eng, p_task=p_task, **kwargs)
    )


class TestPrimitiveTerms:
    def test_tx_scales_with_frequency(self):
        slow = model(pl_frequency_hz=mhz(200)).t_tx()
        fast = model(pl_frequency_hz=mhz(400)).t_tx()
        assert slow == pytest.approx(2 * fast)

    def test_tx_scales_with_block_size(self):
        small = model(m=128, p_eng=2).t_tx()
        large = model(m=128, p_eng=8).t_tx()
        assert large > 3 * small  # ~4x payload per pair

    def test_rx_symmetric(self):
        pm = model()
        assert pm.t_rx() == pm.t_tx()

    def test_aiewait_non_negative(self):
        assert model().t_aiewait() >= 0.0

    def test_algo_composition(self):
        pm = model()
        assert pm.t_algo() == pytest.approx(pm.t_tx() + pm.t_aiewait())

    def test_codesign_has_faster_stage(self):
        # P_eng = 3 gives 5 layers in a single lane (no crossing DMA),
        # isolating the co-design's effect on the stage time.
        co = model(n=129, p_eng=3, use_codesign=True)
        naive = model(n=129, p_eng=3, use_codesign=False)
        assert co.t_move() < naive.t_move()
        assert co.t_stage() < naive.t_stage()

    def test_ddr_is_num_times_tx(self):
        pm = model()
        assert pm.t_ddr() == pytest.approx(
            pm.config.num_block_pairs * pm.t_tx()
        )

    def test_datawait_zero_for_many_pairs(self):
        # 2016 pairs at P_eng = 2 dwarf the pipeline depth.
        assert model(p_eng=2).t_datawait() == 0.0

    def test_datawait_positive_for_few_pairs(self):
        # Two blocks -> a single pair: pure fill/drain.
        pm = model(m=64, n=64, p_eng=8, p_task=1)
        if pm.config.num_block_pairs <= 3:
            assert pm.t_datawait() > 0.0

    def test_breakdown_fields_positive(self):
        b = model().breakdown()
        assert b.t_tx > 0
        assert b.t_orth > 0
        assert b.t_iter > 0
        assert b.t_norm > 0
        assert b.aie_total > 0


class TestCompositions:
    def test_iteration_time_decreases_with_p_eng(self):
        times = [model(m=256, n=256, p_eng=k).iteration_time() for k in (2, 4, 8)]
        assert times[0] > times[1] > times[2]

    def test_iteration_time_grows_with_size(self):
        times = [model(m=m, n=m, p_eng=8).iteration_time() for m in (128, 256, 512)]
        assert times[0] < times[1] < times[2]

    def test_task_time_composition(self):
        pm = model(fixed_iterations=6)
        t6 = pm.task_time()
        t1 = pm.task_time(iterations=1)
        # Six iterations cost more than one but share DDR/norm overheads.
        assert t6 > t1
        assert t6 < 6 * t1

    def test_system_time_waves(self):
        pm = model(m=256, n=256, p_eng=4, p_task=4, fixed_iterations=1)
        t_task = pm.task_time()
        assert pm.system_time(4) == pytest.approx(t_task)
        assert pm.system_time(5) == pytest.approx(2 * t_task)

    def test_throughput_scales_with_p_task(self):
        one = model(m=256, n=256, p_eng=4, p_task=1, fixed_iterations=6)
        nine = model(m=256, n=256, p_eng=4, p_task=9, fixed_iterations=6)
        assert nine.throughput(90) > 5 * one.throughput(90)

    def test_iterations_selection(self):
        fixed = model(fixed_iterations=6)
        assert fixed.iterations() == 6
        converged = model()
        assert converged.iterations() == estimated_iterations(128, 1e-6)

    def test_system_time_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            model().system_time(0)


class TestEstimatedIterations:
    def test_grows_with_size(self):
        assert estimated_iterations(1024) > estimated_iterations(128)

    def test_tighter_precision_needs_more(self):
        assert estimated_iterations(256, 1e-10) > estimated_iterations(256, 1e-6)

    def test_reasonable_range(self):
        for n in (64, 128, 512, 1024):
            iters = estimated_iterations(n)
            assert 4 <= iters <= 16
