"""Tests for the fp32 (AIE-accurate) arithmetic mode of the functional
accelerator and the tile-memory column-length bound."""

import numpy as np
import pytest

from repro.core.accelerator import HeteroSVDAccelerator
from repro.core.config import HeteroSVDConfig
from repro.errors import ConfigurationError


class TestFloat32Mode:
    def _run(self, rng, arithmetic, precision):
        a = rng.standard_normal((64, 64))
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=8, arithmetic=arithmetic, precision=precision
        )
        return a, HeteroSVDAccelerator(config).run(a, accumulate_v=True)

    def test_fp32_results_are_fp32(self, rng):
        _, result = self._run(rng, "float32", 1e-5)
        assert result.u.dtype == np.float32
        assert result.sigma.dtype == np.float32
        assert result.v.dtype == np.float32

    def test_fp32_accuracy_band(self, rng):
        # fp32 carries ~7 decimal digits; singular values must match
        # LAPACK's fp64 answer to single precision, not double.
        a, result = self._run(rng, "float32", 1e-5)
        s_ref = np.linalg.svd(a, compute_uv=False)
        deviation = np.max(np.abs(result.sigma - s_ref)) / s_ref[0]
        assert deviation < 1e-4
        assert result.converged

    def test_fp64_strictly_more_accurate(self, rng):
        a64, result64 = self._run(rng, "float64", 1e-8)
        rng2 = np.random.default_rng(12345)
        a32, result32 = self._run(rng2, "float32", 1e-5)
        s64 = np.linalg.svd(a64, compute_uv=False)
        s32 = np.linalg.svd(a32, compute_uv=False)
        dev64 = np.max(np.abs(result64.sigma - s64)) / s64[0]
        dev32 = np.max(np.abs(result32.sigma - s32)) / s32[0]
        assert dev64 < dev32

    def test_fp32_convergence_floor(self, rng):
        # Demanding 1e-12 from fp32 hardware must fail to converge
        # within a realistic sweep budget rather than silently "pass".
        a = rng.standard_normal((32, 32))
        config = HeteroSVDConfig(
            m=32, n=32, p_eng=4, arithmetic="float32",
            precision=1e-12, fixed_iterations=20,
        )
        result = HeteroSVDAccelerator(config).run(a)
        assert not result.converged

    def test_invalid_arithmetic_rejected(self):
        with pytest.raises(ConfigurationError):
            HeteroSVDConfig(m=32, n=32, p_eng=4, arithmetic="float16")


class TestColumnLengthBound:
    def test_paper_sizes_fit(self):
        # All evaluation sizes (up to 1024) fit a bank.
        for m in (128, 256, 512, 1024, 2048):
            HeteroSVDConfig(m=m, n=256, p_eng=8)

    def test_over_long_columns_rejected(self):
        with pytest.raises(ConfigurationError) as exc:
            HeteroSVDConfig(m=2049, n=256, p_eng=8)
        assert "memory bank" in str(exc.value)
