"""Tests for the calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import KNOBS, sensitivity_analysis
from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import PerformanceModel
from repro.errors import ConfigurationError
from repro.versal import kernels


@pytest.fixture
def config():
    return HeteroSVDConfig(m=256, n=256, p_eng=8, p_task=1)


class TestSensitivityAnalysis:
    def test_covers_every_knob(self, config):
        results = sensitivity_analysis(config)
        assert {r.parameter for r in results} == set(KNOBS)

    def test_sorted_by_effect(self, config):
        results = sensitivity_analysis(config)
        effects = [r.relative_effect for r in results]
        assert effects == sorted(effects, reverse=True)

    def test_stream_bound_design_dominated_by_plio_gap(self, config):
        # The design is stream-bound: the PLIO per-column gap must move
        # latency far more than any AIE-side constant.
        results = {r.parameter: r for r in sensitivity_analysis(config)}
        gap = results["plio_column_gap"].relative_effect
        assert gap > 10 * results["kernel_overhead"].relative_effect
        assert gap > 10 * results["rotation_scalar"].relative_effect

    def test_constants_restored_after_analysis(self, config):
        before = (
            kernels.KERNEL_OVERHEAD_CYCLES,
            kernels.ROTATION_SCALAR_CYCLES,
        )
        baseline_time = PerformanceModel(config).task_time()
        sensitivity_analysis(config, scale=2.0)
        after = (
            kernels.KERNEL_OVERHEAD_CYCLES,
            kernels.ROTATION_SCALAR_CYCLES,
        )
        assert before == after
        assert PerformanceModel(config).task_time() == baseline_time

    def test_bigger_scale_bigger_effect(self, config):
        small = {
            r.parameter: r.relative_effect
            for r in sensitivity_analysis(config, scale=1.1)
        }
        large = {
            r.parameter: r.relative_effect
            for r in sensitivity_analysis(config, scale=1.5)
        }
        assert large["plio_column_gap"] > small["plio_column_gap"]

    def test_invalid_scale(self, config):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(config, scale=1.0)
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(config, scale=0.0)

    def test_baseline_values_reported(self, config):
        results = {r.parameter: r for r in sensitivity_analysis(config)}
        assert results["kernel_overhead"].baseline_value == pytest.approx(
            kernels.KERNEL_OVERHEAD_CYCLES
        )
