"""Tests for the roofline and Pareto analysis tools."""

import pytest

from repro.analysis.pareto import pareto_front
from repro.analysis.roofline import (
    RooflinePoint,
    pair_operations,
    roofline_analysis,
)
from repro.core.config import HeteroSVDConfig
from repro.core.dse import DesignSpaceExplorer
from repro.errors import DesignSpaceError
from repro.units import mhz


class TestRoofline:
    def test_paper_configs_are_stream_bound(self):
        # The Fig. 9 claim: HeteroSVD is limited by streaming/memory,
        # not AIE compute, at every evaluated configuration.
        for p_eng in (2, 4, 8):
            for m in (128, 512):
                config = HeteroSVDConfig(
                    m=m, n=m, p_eng=p_eng, pl_frequency_hz=mhz(208.3)
                )
                point = roofline_analysis(config)
                assert point.bound == "stream", (p_eng, m)

    def test_compute_utilization_is_low(self):
        # Stream-bound designs leave the AIEs mostly idle.
        config = HeteroSVDConfig(m=256, n=256, p_eng=8)
        point = roofline_analysis(config)
        assert point.compute_utilization < 0.25

    def test_stream_utilization_is_high(self):
        config = HeteroSVDConfig(m=256, n=256, p_eng=8)
        point = roofline_analysis(config)
        assert point.stream_utilization > 0.5

    def test_intensity_independent_of_m(self):
        # Ops and bytes both scale with m: intensity depends on k only.
        i128 = roofline_analysis(
            HeteroSVDConfig(m=128, n=128, p_eng=4)
        ).arithmetic_intensity
        i512 = roofline_analysis(
            HeteroSVDConfig(m=512, n=512, p_eng=4)
        ).arithmetic_intensity
        assert i128 == pytest.approx(i512)

    def test_intensity_grows_with_k(self):
        # More layers per streamed pair -> more reuse.
        i2 = roofline_analysis(
            HeteroSVDConfig(m=128, n=128, p_eng=2)
        ).arithmetic_intensity
        i8 = roofline_analysis(
            HeteroSVDConfig(m=128, n=128, p_eng=8)
        ).arithmetic_intensity
        assert i8 > 3 * i2

    def test_pair_operations_formula(self):
        # k = 2: 6 rotations of 14 m ops.
        assert pair_operations(100, 4) == 6 * 14 * 100

    def test_roofs_positive(self):
        point = roofline_analysis(HeteroSVDConfig(m=128, n=128, p_eng=4))
        assert isinstance(point, RooflinePoint)
        assert point.compute_roof_flops > 0
        assert point.stream_roof_bytes_per_s > 0
        assert point.achieved_flops > 0


class TestParetoFront:
    @pytest.fixture(scope="class")
    def points(self):
        dse = DesignSpaceExplorer(256, 256, fixed_iterations=6)
        return dse.explore("latency", batch=50, frequency_hz=mhz(208.3))

    def test_front_is_subset(self, points):
        front = pareto_front(points)
        assert 0 < len(front) <= len(points)
        assert all(p in points for p in front)

    def test_no_member_dominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominated = (
                    b.latency <= a.latency
                    and b.throughput >= a.throughput
                    and b.power.total <= a.power.total
                    and (
                        b.latency < a.latency
                        or b.throughput > a.throughput
                        or b.power.total < a.power.total
                    )
                )
                assert not dominated

    def test_every_dropped_point_is_dominated(self, points):
        front = pareto_front(points)
        dropped = [p for p in points if p not in front]
        for victim in dropped:
            assert any(
                f.latency <= victim.latency
                and f.throughput >= victim.throughput
                and f.power.total <= victim.power.total
                for f in front
            )

    def test_sorted_by_latency(self, points):
        front = pareto_front(points)
        latencies = [p.latency for p in front]
        assert latencies == sorted(latencies)

    def test_front_spans_objectives(self, points):
        # The latency-optimal and throughput-optimal points both belong
        # to the front.
        front = pareto_front(points)
        best_latency = min(points, key=lambda p: p.latency)
        best_throughput = max(points, key=lambda p: p.throughput)
        assert best_latency in front
        assert best_throughput in front

    def test_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            pareto_front([])
