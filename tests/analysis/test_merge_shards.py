"""Merge-semantics tests for the sharded-sweep Pareto merge.

The contract under test (see ``docs/resilience.md``): merging is
idempotent, independent of the partition, tolerant of missing and
quarantined shards (reported, optionally recovered, never fatal), and
the merged frontier is byte-identical to the serial sweep of the same
space — while byte-*divergent* duplicate evaluations are a determinism
bug and must raise.
"""

import json
import shutil

import pytest

from repro.analysis.pareto import merge_shards, pareto_front
from repro.dse import DesignSpace, ShardPlan, run_shard
from repro.dse.sharded import shard_ledger_path
from repro.errors import DesignSpaceError
from repro.io import design_point_to_dict


def small_space():
    return DesignSpace(32, 32, orderings=("codesign",), freq_derates=(1.0,))


def frontier_bytes(points):
    return json.dumps(
        [design_point_to_dict(p) for p in points], sort_keys=True
    )


@pytest.fixture(scope="module")
def reference():
    return frontier_bytes(pareto_front(small_space().explore_serial()))


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """A completed, healthy 2-shard sweep (no stealing involved)."""
    workdir = tmp_path_factory.mktemp("sweep")
    for shard in (0, 1):
        run_shard(workdir, shard, space=small_space(), shards=2,
                  steal=False)
    return workdir


def _clone(sweep_dir, tmp_path):
    clone = tmp_path / "sweep"
    shutil.copytree(sweep_dir, clone)
    return clone


class TestMergeParity:
    def test_complete_merge_matches_serial_frontier(
        self, sweep_dir, reference
    ):
        merge = merge_shards(sweep_dir)
        assert merge.complete
        assert merge.merged_units == merge.total_units
        assert merge.duplicates == 0
        assert frontier_bytes(merge.frontier) == reference

    def test_merge_is_idempotent(self, sweep_dir):
        first = merge_shards(sweep_dir)
        second = merge_shards(sweep_dir)
        assert frontier_bytes(first.frontier) == frontier_bytes(
            second.frontier
        )
        assert first.merged_units == second.merged_units
        assert first.duplicates == second.duplicates

    def test_frontier_is_partition_independent(
        self, reference, tmp_path
    ):
        """A different seed assigns units to different shards; the
        merged frontier must not notice."""
        for shard in range(3):
            run_shard(tmp_path, shard, space=small_space(), shards=3,
                      seed=99, steal=False)
        merge = merge_shards(tmp_path)
        assert merge.complete
        assert frontier_bytes(merge.frontier) == reference


class TestMergeDamageTolerance:
    def test_missing_shard_is_reported_not_fatal(
        self, sweep_dir, tmp_path
    ):
        clone = _clone(sweep_dir, tmp_path)
        shard_ledger_path(clone, 1).unlink()
        merge = merge_shards(clone)
        plan = ShardPlan.load(clone)
        assert not merge.complete
        assert merge.missing_units == len(plan.units_for(1))
        assert merge.shards[1].present is False
        assert "missing" in merge.describe()

    def test_recover_restores_parity(self, sweep_dir, reference, tmp_path):
        clone = _clone(sweep_dir, tmp_path)
        shard_ledger_path(clone, 1).unlink()
        merge = merge_shards(clone, recover=True)
        assert merge.complete
        assert merge.recovered == len(ShardPlan.load(clone).units_for(1))
        assert frontier_bytes(merge.frontier) == reference
        # The recovery persisted: a plain re-merge is now complete too.
        assert merge_shards(clone).complete

    def test_quarantined_shard_is_reported_and_recoverable(
        self, sweep_dir, reference, tmp_path
    ):
        clone = _clone(sweep_dir, tmp_path)
        ledger = shard_ledger_path(clone, 1)
        payload = ledger.read_text()
        ledger.write_text(payload[: len(payload) // 2])
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            merge = merge_shards(clone)
        assert not merge.complete
        assert merge.shards[1].quarantined
        assert merge.shards[1].present is False
        recovered = merge_shards(clone, recover=True)
        assert recovered.complete
        assert frontier_bytes(recovered.frontier) == reference
        # Quarantine provenance survives the recovery pass.
        assert recovered.shards[1].quarantined

    def test_nothing_to_merge_raises(self, tmp_path):
        ShardPlan.partition(small_space(), 2).save(tmp_path)
        with pytest.raises(DesignSpaceError, match="merge"):
            merge_shards(tmp_path)


class TestDuplicateSemantics:
    def _copy_entry(self, clone, key=None, tamper=False):
        """Duplicate one of shard 1's entries into shard 0's ledger."""
        source = json.loads(shard_ledger_path(clone, 1).read_text())
        target_path = shard_ledger_path(clone, 0)
        target = json.loads(target_path.read_text())
        key = key or next(iter(source["entries"]))
        entry = json.loads(json.dumps(source["entries"][key]))
        if tamper:
            data = entry["data"]
            numeric = next(
                k for k, v in data.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            data[numeric] = data[numeric] + 1.0
        target["entries"][key] = entry
        target_path.write_text(json.dumps(target))
        return key

    def test_byte_identical_duplicates_are_safe(
        self, sweep_dir, reference, tmp_path
    ):
        clone = _clone(sweep_dir, tmp_path)
        self._copy_entry(clone, tamper=False)
        merge = merge_shards(clone)
        assert merge.complete
        assert merge.duplicates == 1
        assert frontier_bytes(merge.frontier) == reference

    def test_divergent_duplicates_raise(self, sweep_dir, tmp_path):
        clone = _clone(sweep_dir, tmp_path)
        self._copy_entry(clone, tamper=True)
        with pytest.raises(DesignSpaceError, match="disagree"):
            merge_shards(clone)
