"""Tests for the cross-implementation validation suite."""

import numpy as np
import pytest

from repro.validation import (
    SPECTRUM_TOLERANCE,
    default_cases,
    run_validation,
)


class TestDefaultCases:
    def test_battery_composition(self):
        cases = default_cases(size=16)
        names = {c.name for c in cases}
        assert names == {
            "gaussian", "ill-conditioned", "rank-deficient", "tall",
            "tiny-scale",
        }

    def test_case_shapes(self):
        for case in default_cases(size=16):
            m, n = case.matrix.shape
            assert n == 16
            assert m in (16, 32)

    def test_tiny_scale_is_tiny(self):
        cases = {c.name: c for c in default_cases(size=16)}
        assert np.max(np.abs(cases["tiny-scale"].matrix)) < 1e-140


class TestRunValidation:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_validation(size=16, precision=1e-9)

    def test_all_implementations_pass(self, reports):
        for report in reports:
            assert report.passed, (
                report.implementation, report.worst_error,
            )

    def test_five_implementations_covered(self, reports):
        names = {r.implementation for r in reports}
        assert names == {
            "hestenes", "block-jacobi", "cpu-vectorized",
            "accelerator", "cosimulation",
        }

    def test_every_case_recorded(self, reports):
        for report in reports:
            assert len(report.case_errors) == 5

    def test_worst_error_is_max(self, reports):
        for report in reports:
            assert report.worst_error == max(report.case_errors.values())

    def test_tolerance_is_strict(self):
        assert SPECTRUM_TOLERANCE <= 1e-6


class TestCLIEntry:
    def test_main_returns_zero_on_pass(self, capsys):
        from repro.validation import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "PASS" in out
