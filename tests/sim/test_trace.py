"""Unit tests for trace recording."""

import pytest

from repro.sim.trace import Trace, TraceRecord


class TestTraceRecord:
    def test_duration(self):
        rec = TraceRecord(stage="tx", start=1.0, end=3.5)
        assert rec.duration == 2.5


class TestTrace:
    def test_aggregation(self):
        trace = Trace()
        trace.log("tx", 0.0, 1.0)
        trace.log("tx", 2.0, 2.5)
        trace.log("orth", 0.5, 0.7)
        assert trace.stage_time("tx") == 1.5
        assert trace.stage_count("tx") == 2
        assert trace.stage_time("orth") == pytest.approx(0.2)

    def test_unknown_stage_is_zero(self):
        trace = Trace()
        assert trace.stage_time("ghost") == 0.0
        assert trace.stage_count("ghost") == 0

    def test_stages_sorted(self):
        trace = Trace()
        trace.log("rx", 0, 1)
        trace.log("orth", 0, 1)
        assert trace.stages() == ["orth", "rx"]

    def test_summary(self):
        trace = Trace()
        trace.log("tx", 0, 2)
        assert trace.summary() == {"tx": (1, 2)}

    def test_disabled_trace_still_aggregates(self):
        trace = Trace(enabled=False)
        trace.log("tx", 0, 1)
        assert trace.records == []
        assert trace.stage_time("tx") == 1.0
