"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Resource, SimulationEngine


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.schedule(1.0, lambda: order.append(3))
        engine.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]
        assert engine.now == 5.0

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        seen = []

        def first():
            seen.append(engine.now)
            engine.schedule(2.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [1.0, 3.0]

    def test_run_until(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(10))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.pending == 1

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_event_counter(self):
        engine = SimulationEngine()
        for _ in range(4):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_run == 4


class TestResource:
    def test_idle_resource_serves_immediately(self):
        r = Resource("r")
        assert r.serve(ready=5.0, duration=2.0) == 7.0

    def test_busy_resource_queues(self):
        r = Resource("r")
        r.serve(ready=0.0, duration=10.0)
        # Second request ready at t=1 must wait until t=10.
        assert r.serve(ready=1.0, duration=2.0) == 12.0

    def test_gap_leaves_idle_time(self):
        r = Resource("r")
        r.serve(ready=0.0, duration=1.0)
        assert r.serve(ready=5.0, duration=1.0) == 6.0

    def test_busy_time_and_utilization(self):
        r = Resource("r")
        r.serve(0.0, 2.0)
        r.serve(10.0, 3.0)
        assert r.busy_time == 5.0
        assert r.utilization(horizon=20.0) == pytest.approx(0.25)
        assert r.requests == 2

    def test_utilization_clamped(self):
        r = Resource("r")
        r.serve(0.0, 100.0)
        assert r.utilization(horizon=10.0) == 1.0
        assert r.utilization(horizon=0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource("r").serve(0.0, -1.0)

    def test_reset(self):
        r = Resource("r")
        r.serve(0.0, 5.0)
        r.reset()
        assert r.free_at == 0.0
        assert r.busy_time == 0.0
        assert r.requests == 0
