"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    DesignSpaceExplorer,
    HeteroSVDAccelerator,
    HeteroSVDConfig,
    PerformanceModel,
    TimingSimulator,
    svd,
)
from repro.units import mhz
from repro.workloads.batch import make_batch
from repro.workloads.mimo import mimo_channel, waterfill
from repro.workloads.recsys import rating_matrix, top_k_approximation


class TestThreeSolversAgree:
    def test_software_block_and_hardware_agree(self, rng):
        a = rng.standard_normal((32, 16))
        sw = svd(a, method="hestenes", precision=1e-9).singular_values
        blk = svd(a, method="block", block_width=4, precision=1e-9).singular_values
        hw = HeteroSVDAccelerator(
            HeteroSVDConfig(m=32, n=16, p_eng=4, precision=1e-9)
        ).run(a).sigma
        assert np.allclose(sw, blk, rtol=1e-7)
        assert np.allclose(sw, hw, rtol=1e-7)


class TestDSEDrivenRun:
    def test_best_config_runs_functionally(self, rng):
        # Pick the DSE's latency-optimal point for a 32x32 workload and
        # execute it end to end on the functional model.
        dse = DesignSpaceExplorer(32, 32)
        best = dse.best("latency")
        config = best.config
        a = rng.standard_normal((config.m, config.n))
        result = HeteroSVDAccelerator(config).run(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.sigma[: len(s_ref)], s_ref, rtol=1e-6)

    def test_model_and_simulation_agree_on_dse_points(self):
        dse = DesignSpaceExplorer(128, 128, fixed_iterations=6)
        for point in dse.explore("latency")[:3]:
            model_time = PerformanceModel(point.config).task_time()
            sim_time = TimingSimulator(point.config).simulate(1).latency
            assert abs(model_time - sim_time) / sim_time < 0.15


class TestApplicationPipelines:
    def test_mimo_beamforming_pipeline(self):
        h = mimo_channel(8, 8, seed=3)  # 16x16 real embedding
        config = HeteroSVDConfig(m=16, n=16, p_eng=4, precision=1e-8)
        result = HeteroSVDAccelerator(config).run(h, accumulate_v=True)
        powers = waterfill(result.sigma, total_power=10.0)
        assert powers.sum() == pytest.approx(10.0)
        # Beamformed channel U^T H V is diagonal with the sigmas.
        effective = result.u.T @ h @ result.v
        off_diag = effective - np.diag(np.diag(effective))
        assert np.max(np.abs(off_diag)) < 1e-5 * result.sigma[0]

    def test_recommender_pipeline(self):
        ratings = rating_matrix(32, 24, latent_rank=4, noise=0.05, seed=7)
        config = HeteroSVDConfig(m=32, n=24, p_eng=4, precision=1e-8)
        result = HeteroSVDAccelerator(config).run(ratings, accumulate_v=True)
        approx = top_k_approximation(result.u, result.sigma, result.v, k=4)
        rel_err = np.linalg.norm(ratings - approx) / np.linalg.norm(ratings)
        # The accelerator's rank-4 model must match LAPACK's optimal
        # rank-4 truncation (Eckart-Young) to numerical accuracy.
        u, s, vt = np.linalg.svd(ratings)
        optimal = np.linalg.norm(
            ratings - (u[:, :4] * s[:4]) @ vt[:4]
        ) / np.linalg.norm(ratings)
        assert rel_err == pytest.approx(optimal, rel=1e-6)

    def test_batch_throughput_workflow(self):
        batch = make_batch(16, 16, batch=4, seed=0)
        config = HeteroSVDConfig(m=16, n=16, p_eng=4, p_task=2)
        accel = HeteroSVDAccelerator(config)
        results = accel.run_batch(batch.matrices)
        assert len(results) == 4
        timing = TimingSimulator(config).simulate(len(batch))
        assert timing.throughput > 0


class TestCodesignAblation:
    def test_codesign_wins_time_and_traffic(self, rng):
        base = dict(m=64, n=64, p_eng=8, p_task=1, fixed_iterations=2,
                    pl_frequency_hz=mhz(450))
        co_cfg = HeteroSVDConfig(use_codesign=True, **base)
        tr_cfg = HeteroSVDConfig(use_codesign=False, **base)
        a = rng.standard_normal((64, 64))
        co = HeteroSVDAccelerator(co_cfg).run(a)
        tr = HeteroSVDAccelerator(tr_cfg).run(a)
        # Same numerics, k-times less DMA traffic.
        assert np.allclose(co.sigma, tr.sigma, rtol=1e-9)
        assert tr.transfers.dma_transfers == 8 * co.transfers.dma_transfers
        # And faster simulated iterations.
        t_co = TimingSimulator(co_cfg).measure_iteration_time()
        t_tr = TimingSimulator(tr_cfg).measure_iteration_time()
        assert t_co <= t_tr
