"""Smoke tests: every example script must run green.

Each example is executed as a subprocess (the way users run them) with
a generous timeout; a failing example is a broken deliverable even if
the library's own tests pass.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, args, substring expected in stdout)
CASES = [
    ("quickstart.py", [], "simulated task latency"),
    ("mimo_beamforming.py", [], "coherence deadline"),
    ("recommender.py", [], "best truncation rank"),
    ("doa_estimation.py", [], "estimated angles"),
    ("subspace_tracking.py", [], "warm updates"),
    ("placement_viewer.py", ["4", "4"], "row 7"),
    ("dse_explorer.py", ["128", "10"], "best latency"),
    ("image_compression.py", [], "randomized top-16"),
    ("energy_analysis.py", [], "stream-bound everywhere"),
    ("benchmark_strategies.py", ["24"], "report round-trip ok"),
]


@pytest.mark.parametrize("script,args,expected", CASES)
def test_example_runs(script, args, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_all_examples_covered():
    """Every example script has a smoke test (or is known-slow)."""
    known_slow = {"precision_study.py", "paper_reproduction.py"}
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    tested = {script for script, _, _ in CASES}
    assert on_disk - known_slow == tested
