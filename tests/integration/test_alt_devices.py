"""Device-independence tests: the stack must work on non-VCK190 parts.

Builds a hypothetical smaller Versal-class device and checks that
placement, resource accounting, the performance model, the DSE, and
the functional accelerator all respect its budgets — i.e. nothing in
the library hard-codes the VCK190.
"""

from dataclasses import replace

import numpy as np

from repro.core.accelerator import HeteroSVDAccelerator
from repro.core.config import HeteroSVDConfig
from repro.core.dse import DesignSpaceExplorer
from repro.core.perf_model import PerformanceModel
from repro.core.placement import max_feasible_tasks, place
from repro.core.resources import estimate_resources, is_feasible
from repro.core.timing import TimingSimulator
from repro.versal.array import AIEArray
from repro.versal.device import VCK190

#: A hypothetical edge-class device: a quarter of the VCK190's AIE
#: array and half its PL memory.
SMALL_DEVICE = replace(
    VCK190,
    name="hypothetical small Versal",
    aie_rows=8,
    aie_cols=12,
    max_aie=96,
    max_plio=36,
    max_uram=100,
    max_bram=400,
)


class TestSmallDevice:
    def test_array_geometry_follows_device(self):
        array = AIEArray(SMALL_DEVICE)
        assert array.n_tiles == 96

    def test_placement_respects_columns(self):
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=4, p_task=1, device=SMALL_DEVICE
        )
        placement = place(config)
        for coord in placement.tasks[0].orth.values():
            assert coord[1] < 12

    def test_max_tasks_smaller_than_vck190(self):
        small = HeteroSVDConfig(m=64, n=64, p_eng=4, device=SMALL_DEVICE)
        big = HeteroSVDConfig(m=64, n=64, p_eng=4, device=VCK190)
        assert max_feasible_tasks(small) < max_feasible_tasks(big)

    def test_budgets_enforced(self):
        # P_eng = 8 needs 3 lanes of 8 columns + norm: 12 columns can
        # hold one chunk only -> infeasible on the small part.
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=8, p_task=1, device=SMALL_DEVICE
        )
        assert not is_feasible(config)

    def test_resources_counted_against_small_budgets(self):
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=2, p_task=2, device=SMALL_DEVICE
        )
        usage = estimate_resources(config)
        util = usage.utilization(config)
        assert util["AIE"] == usage.aie / 96

    def test_functional_run_on_small_device(self, rng):
        config = HeteroSVDConfig(
            m=32, n=32, p_eng=4, p_task=1, device=SMALL_DEVICE
        )
        a = rng.standard_normal((32, 32))
        result = HeteroSVDAccelerator(config).run(a)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.sigma, s_ref, rtol=1e-6)

    def test_model_and_timing_work(self):
        config = HeteroSVDConfig(
            m=64, n=64, p_eng=4, p_task=1, device=SMALL_DEVICE
        )
        model_time = PerformanceModel(config).task_time()
        sim_time = TimingSimulator(config).simulate(1).latency
        assert model_time > 0
        assert abs(model_time - sim_time) / sim_time < 0.2

    def test_dse_explores_reduced_space(self):
        dse = DesignSpaceExplorer(64, 64, fixed_iterations=6)
        # Monkey-free: construct configs directly against the device by
        # checking stage-1 style feasibility.
        feasible = [
            p_eng
            for p_eng in range(1, 9)
            if 64 % p_eng == 0
            and is_feasible(
                HeteroSVDConfig(
                    m=64, n=64, p_eng=p_eng, p_task=1, device=SMALL_DEVICE
                )
            )
        ]
        assert feasible  # something fits
        assert 8 not in feasible  # the big engine does not
