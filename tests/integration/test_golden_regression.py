"""Golden regression tests: frozen model outputs.

These pin the calibrated model's key outputs — the Table IV
single-iteration times and the DMA/resource figures — to the values
recorded in EXPERIMENTS.md.  A failing test here means the calibration
moved: either intentionally (update the goldens *and* EXPERIMENTS.md
together) or by accident (a regression).
"""

import pytest

from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import PerformanceModel
from repro.core.resources import estimate_resources
from repro.core.timing import TimingSimulator
from repro.units import mhz

#: (m, P_eng) -> (measured ms, modelled ms) recorded in EXPERIMENTS.md.
GOLDEN_TABLE4 = {
    (128, 2): (0.988, 0.931),
    (256, 2): (6.479, 6.246),
    (512, 2): (46.072, 45.133),
    (128, 4): (0.474, 0.461),
    (256, 4): (3.160, 3.103),
    (512, 4): (22.718, 22.486),
    (128, 8): (0.230, 0.229),
    (256, 8): (1.547, 1.536),
    (512, 8): (11.223, 11.171),
}

#: (P_eng, P_task) -> (AIE, URAM) for 256x256 (Table VI reproduction).
GOLDEN_TABLE6_RESOURCES = {
    (2, 26): (234, 416),
    (4, 9): (387, 144),
    (6, 4): (356, 96),
    (8, 2): (334, 32),
}


class TestGoldenTable4:
    @pytest.mark.parametrize("case,golden", GOLDEN_TABLE4.items())
    def test_iteration_times_frozen(self, case, golden):
        m, p_eng = case
        golden_measured, golden_modelled = golden
        config = HeteroSVDConfig(
            m=m, n=m, p_eng=p_eng, p_task=1,
            pl_frequency_hz=mhz(208.3), fixed_iterations=1,
        )
        measured = TimingSimulator(config).measure_iteration_time() * 1e3
        modelled = PerformanceModel(config).iteration_time() * 1e3
        # Goldens are recorded to three decimals; 0.5% absorbs rounding.
        assert measured == pytest.approx(golden_measured, rel=5e-3)
        assert modelled == pytest.approx(golden_modelled, rel=5e-3)


class TestGoldenTable6:
    @pytest.mark.parametrize(
        "point,golden", GOLDEN_TABLE6_RESOURCES.items()
    )
    def test_resources_frozen(self, point, golden):
        p_eng, p_task = point
        golden_aie, golden_uram = golden
        n = 256 if 256 % p_eng == 0 else (256 // p_eng + 1) * p_eng
        config = HeteroSVDConfig(m=256, n=n, p_eng=p_eng, p_task=p_task)
        usage = estimate_resources(config)
        assert usage.aie == golden_aie
        assert usage.uram == golden_uram
