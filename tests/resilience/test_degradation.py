"""Tests for numerical graceful degradation (reference-SVD fallback)."""

import numpy as np
import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.errors import (
    ConvergenceError,
    DegradedResultWarning,
    NumericalError,
)
from repro.exec.batch import BatchExecutor
from repro.linalg import hestenes_svd, svd
from repro.resilience import FaultPlan, FaultSpec
from repro.workloads.batch import make_batch

RNG = np.random.default_rng(3)


def _matrix(m=8, n=6):
    return RNG.standard_normal((m, n))


class TestHestenesFallback:
    def test_zero_budget_raises_with_populated_fields(self):
        a = _matrix()
        with pytest.raises(ConvergenceError) as excinfo:
            hestenes_svd(a, max_sweeps=0)
        error = excinfo.value
        assert error.iterations == 0
        assert error.residual == float("inf")
        assert "residual" in str(error)
        assert "iterations" in str(error)

    def test_reference_fallback_returns_degraded_result(self):
        a = _matrix()
        with pytest.warns(DegradedResultWarning):
            result = hestenes_svd(a, max_sweeps=0, fallback="reference")
        assert result.degraded
        assert not result.converged
        np.testing.assert_allclose(
            result.singular_values,
            np.linalg.svd(a, compute_uv=False),
            atol=1e-10,
        )
        # The factors still reconstruct the input.
        np.testing.assert_allclose(
            result.u * result.singular_values @ result.v.T, a, atol=1e-10
        )

    def test_converged_run_is_never_degraded(self):
        result = hestenes_svd(_matrix(), fallback="reference")
        assert result.converged
        assert not result.degraded

    def test_unknown_fallback_rejected(self):
        with pytest.raises(NumericalError, match="fallback"):
            hestenes_svd(_matrix(), fallback="wishful-thinking")

    def test_injected_nonconvergence_degrades(self):
        plan = FaultPlan(
            faults=[FaultSpec(site="linalg.nonconvergence", at=(0,))]
        )
        a = _matrix()
        with plan.activate():
            with pytest.warns(DegradedResultWarning):
                first = hestenes_svd(a, fallback="reference")
            second = hestenes_svd(a, fallback="reference")
        assert first.degraded
        assert not second.degraded  # fault fires once

    def test_injected_nonconvergence_without_fallback_raises(self):
        plan = FaultPlan(
            faults=[FaultSpec(site="linalg.nonconvergence", at=(0,))]
        )
        with plan.activate():
            with pytest.raises(ConvergenceError, match="injected fault"):
                hestenes_svd(_matrix())


class TestSvdFallback:
    @pytest.mark.parametrize("method", ["hestenes", "block"])
    def test_fallback_per_method(self, method):
        a = _matrix()
        with pytest.raises(ConvergenceError) as excinfo:
            svd(a, method=method, max_sweeps=0)
        assert excinfo.value.residual == float("inf")
        with pytest.warns(DegradedResultWarning):
            result = svd(a, method=method, max_sweeps=0,
                         fallback="reference")
        assert result.degraded
        np.testing.assert_allclose(
            result.singular_values,
            np.linalg.svd(a, compute_uv=False),
            atol=1e-10,
        )


class TestConvergenceErrorContract:
    """Satellite: every raiser populates iterations and residual."""

    def test_kogbetliantz_zero_budget(self):
        from repro.linalg.kogbetliantz import kogbetliantz_svd

        with pytest.raises(ConvergenceError) as excinfo:
            kogbetliantz_svd(RNG.standard_normal((5, 5)), max_sweeps=0)
        error = excinfo.value
        assert error.iterations == 0
        assert error.residual == float("inf")
        assert "residual" in str(error)

    def test_incremental_zero_budget(self):
        from repro.core.incremental import IncrementalSVD

        tracker = IncrementalSVD(max_sweeps=0)
        with pytest.raises(ConvergenceError) as excinfo:
            tracker.update(_matrix())
        error = excinfo.value
        assert error.iterations == 0
        assert error.residual == float("inf")
        assert "residual" in str(error)


class TestBatchDegradation:
    @pytest.fixture(scope="class")
    def config(self):
        return DesignSpaceExplorer(32, 32, precision=1e-4).make_config(4, 2)

    @pytest.fixture(scope="class")
    def batch(self):
        return make_batch(32, 32, batch=4, seed=7)

    def test_degraded_tasks_reported_and_still_correct(self, config, batch):
        plan = FaultPlan(
            faults=[FaultSpec(site="linalg.nonconvergence", at=(0,))]
        )
        executor = BatchExecutor(config, engine="software", jobs=2)
        with plan.activate():
            with pytest.warns(DegradedResultWarning):
                report = executor.run(batch)
        # Each pipeline stream counts invocations independently, so the
        # fault fires once per worker stream.
        assert report.degraded_tasks >= 1
        assert sum(r.degraded for r in report.results) == \
            report.degraded_tasks
        # Degraded tasks still carry correct (reference) spectra.
        for result, matrix in zip(report.results, batch):
            reference = np.linalg.svd(matrix, compute_uv=False)
            sigma = np.sort(result.sigma)[::-1][: len(reference)]
            np.testing.assert_allclose(sigma, reference, atol=1e-3)

    def test_degrade_false_propagates(self, config, batch):
        plan = FaultPlan(
            faults=[FaultSpec(site="linalg.nonconvergence", at=(0,))]
        )
        executor = BatchExecutor(
            config, engine="software", jobs=1, degrade=False
        )
        with plan.activate():
            with pytest.raises(ConvergenceError, match="injected fault"):
                executor.run(batch)

    def test_clean_run_reports_zero_degraded(self, config, batch):
        report = BatchExecutor(config, engine="software", jobs=1).run(batch)
        assert report.degraded_tasks == 0
        assert not any(r.degraded for r in report.results)
