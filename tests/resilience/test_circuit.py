"""Circuit-breaker state machine and seeded probe-schedule tests."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import CircuitBreaker
from repro.resilience.circuit import CLOSED, HALF_OPEN, OPEN


def _trip(breaker):
    """Drive a closed breaker to open; return the trip event."""
    event = None
    for _ in range(breaker.failure_threshold):
        event = breaker.record_failure()
    return event


def _calls_until_probe(breaker, limit=64):
    """Number of withheld ``allow()`` calls before the half-open probe."""
    for withheld in range(limit):
        if breaker.allow():
            return withheld
    raise AssertionError(f"no probe within {limit} allow() calls")


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("t")
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("t", failure_threshold=3)
        assert breaker.record_failure() is None
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "tripped"
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("t", failure_threshold=2)
        breaker.record_failure()
        assert breaker.record_success() is None
        # The streak restarted: one more failure must not trip.
        assert breaker.record_failure() is None
        assert breaker.state == CLOSED

    def test_open_withholds_then_half_opens(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=3, probe_jitter=0)
        assert _trip(breaker) == "tripped"
        # Fixed schedule (no jitter): exactly probe_after - 1 calls
        # are withheld, the probe_after-th becomes the probe.
        assert breaker.allow() is False
        assert breaker.allow() is False
        assert breaker.allow() is True
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1

    def test_half_open_admits_only_one_probe(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=1, probe_jitter=0)
        _trip(breaker)
        assert breaker.allow() is True   # the probe
        assert breaker.allow() is False  # probe slot taken
        assert breaker.state == HALF_OPEN

    def test_probe_success_recovers(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=1, probe_jitter=0)
        _trip(breaker)
        assert breaker.allow() is True
        assert breaker.record_success() == "recovered"
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        assert breaker.allow() is True

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=1, probe_jitter=0)
        _trip(breaker)
        assert breaker.allow() is True
        assert breaker.record_failure() == "reopened"
        assert breaker.state == OPEN
        # Reopening does not count as a fresh trip.
        assert breaker.trips == 1

    def test_failure_while_open_is_a_no_op(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=4, probe_jitter=0)
        _trip(breaker)
        assert breaker.record_failure() is None
        assert breaker.state == OPEN

    def test_repr_names_the_resource(self):
        breaker = CircuitBreaker("serve.engine.native")
        assert "serve.engine.native" in repr(breaker)
        assert "closed" in repr(breaker)


class TestSeededSchedule:
    def test_schedule_is_a_pure_function_of_name_and_seed(self):
        # Two breakers with identical (name, seed) must replay the
        # exact same withhold counts across successive trips — that is
        # what makes a chaos run deterministic.
        def schedule(name, seed, trips=5):
            breaker = CircuitBreaker(name, failure_threshold=1,
                                     probe_after=2, probe_jitter=4,
                                     seed=seed)
            counts = []
            for _ in range(trips):
                _trip(breaker)
                counts.append(_calls_until_probe(breaker))
                breaker.record_success()
            return counts

        assert schedule("tier-a", 0) == schedule("tier-a", 0)
        assert schedule("tier-a", 7) == schedule("tier-a", 7)

    def test_name_decorrelates_the_jitter(self):
        # Different names draw from different PRNG streams; over a few
        # trips the schedules should diverge (probabilistically certain
        # with jitter spanning 0..8 over 8 trips).
        def schedule(name):
            breaker = CircuitBreaker(name, failure_threshold=1,
                                     probe_after=1, probe_jitter=8)
            counts = []
            for _ in range(8):
                _trip(breaker)
                counts.append(_calls_until_probe(breaker))
                breaker.record_success()
            return counts

        assert schedule("tier-a") != schedule("tier-b")

    def test_jitter_bounds(self):
        breaker = CircuitBreaker("t", failure_threshold=1,
                                 probe_after=3, probe_jitter=2)
        for _ in range(6):
            _trip(breaker)
            withheld = _calls_until_probe(breaker)
            # countdown = probe_after + jitter in [0, probe_jitter];
            # the probe call itself is the last decrement.
            assert 2 <= withheld <= 4
            breaker.record_success()


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("t", failure_threshold=0)

    def test_rejects_bad_probe_after(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("t", probe_after=0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("t", probe_jitter=-1)
