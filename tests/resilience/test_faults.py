"""Tests for the seeded fault-injection plans."""

import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    MemoryAllocationError,
    SimulationError,
)
from repro.resilience import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fired,
    load_fault_plan,
)


class TestFaultSpec:
    def test_explicit_indices_win(self):
        spec = FaultSpec(site="s", at=(0, 3))
        assert spec.resolve_hits(seed=1) == frozenset({0, 3})
        assert spec.resolve_hits(seed=99) == frozenset({0, 3})

    def test_derived_hits_deterministic_per_seed(self):
        spec = FaultSpec(site="s", count=2, window=10)
        assert spec.resolve_hits(seed=5) == spec.resolve_hits(seed=5)

    def test_two_sites_fail_at_independent_offsets(self):
        a = FaultSpec(site="alpha", count=3, window=100)
        b = FaultSpec(site="beta", count=3, window=100)
        # Same seed, different site → (almost surely) different indices;
        # both draws are fixed by the seed so this cannot flake.
        assert a.resolve_hits(seed=0) != b.resolve_hits(seed=0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="")
        with pytest.raises(ConfigurationError):
            FaultSpec(site="s", count=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="s", at=(-1,))


class TestFaultPlan:
    def test_deterministic_replay(self):
        plan = FaultPlan(seed=11, faults=[FaultSpec(site="s", count=2, window=6)])

        def firing_sequence():
            with plan.activate():
                return [fired("s") is not None for _ in range(6)]

        assert firing_sequence() == firing_sequence()
        assert sum(firing_sequence()) == 2

    def test_duplicate_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(faults=[FaultSpec(site="s"), FaultSpec(site="s")])

    def test_unscheduled_site_never_fires(self):
        plan = FaultPlan(faults=[FaultSpec(site="s", at=(0,))])
        with plan.activate():
            assert fired("other") is None
            assert plan.injected == 0

    def test_subset_has_fresh_counters(self):
        plan = FaultPlan(
            seed=2,
            faults=[
                FaultSpec(site="linalg.nonconvergence", at=(0,)),
                FaultSpec(site="exec.worker_crash", at=(0,)),
            ],
        )
        with plan.activate():
            assert fired("linalg.nonconvergence") is not None
        child = plan.subset("linalg.")
        assert set(child.specs) == {"linalg.nonconvergence"}
        with child.activate():
            # Fresh counter: fires again at its own index 0.
            assert fired("linalg.nonconvergence") is not None

    def test_activation_nests_and_restores(self):
        outer = FaultPlan(faults=[FaultSpec(site="a", at=(0,))])
        inner = FaultPlan(faults=[FaultSpec(site="b", at=(0,))])
        assert active_plan() is None
        with outer.activate():
            assert active_plan() is outer
            with inner.activate():
                assert active_plan() is inner
                assert fired("a") is None  # outer is shadowed
            assert active_plan() is outer
        assert active_plan() is None

    def test_no_plan_is_zero_cost_no_op(self):
        assert active_plan() is None
        assert fired("versal.plio") is None

    def test_injected_counter_and_metric(self):
        from repro import obs

        plan = FaultPlan(faults=[FaultSpec(site="s", at=(0, 1))])
        obs.reset()
        obs.enable()
        try:
            with plan.activate():
                for _ in range(4):
                    fired("s")
            assert plan.injected == 2
            counters = obs.get_metrics().snapshot()["counters"]
            assert counters["resilience.faults_injected"] == 2
        finally:
            obs.disable()


class TestSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            faults=[
                FaultSpec(site="exec.worker_stall", count=2, window=5,
                          param=0.01),
                FaultSpec(site="cache.corrupt", at=(1, 4)),
            ],
        )
        path = plan.save(tmp_path / "plan.json")
        loaded = load_fault_plan(path)
        assert loaded.to_dict() == plan.to_dict()
        assert loaded.hits("cache.corrupt") == plan.hits("cache.corrupt")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_fault_plan(tmp_path / "nope.json")

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_fault_plan(bad)
        bad.write_text('{"faults": [{"count": 1}]}')
        with pytest.raises(ConfigurationError):
            load_fault_plan(bad)
        bad.write_text('{"faults": [{"site": "s", "bogus": 1}]}')
        with pytest.raises(ConfigurationError):
            load_fault_plan(bad)

    def test_known_sites_cover_the_shipped_hooks(self):
        assert "versal.plio" in KNOWN_SITES
        assert "linalg.nonconvergence" in KNOWN_SITES


class TestHardwareHooks:
    def test_plio_transfer_error(self):
        from repro.versal.plio import PLIODirection, PLIOPort

        port = PLIOPort(index=0, direction=PLIODirection.PL_TO_AIE)
        plan = FaultPlan(faults=[FaultSpec(site="versal.plio", at=(0,))])
        with plan.activate():
            with pytest.raises(CommunicationError, match="injected fault"):
                port.transfer_seconds(1024, 200e6)
            # Second invocation does not fire.
            assert port.transfer_seconds(1024, 200e6) > 0

    def test_tile_memory_drop(self):
        from repro.versal.memory import MemoryModule

        module = MemoryModule()
        plan = FaultPlan(
            faults=[FaultSpec(site="versal.tile_memory", at=(0,))]
        )
        with plan.activate():
            with pytest.raises(MemoryAllocationError, match="injected fault"):
                module.allocate("buf", 128)
            assert module.allocate("buf", 128) >= 0

    def test_sim_event_loss(self):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        plan = FaultPlan(faults=[FaultSpec(site="sim.event", at=(0,))])
        with plan.activate():
            with pytest.raises(SimulationError, match="injected fault"):
                engine.schedule(0.0, lambda: None, label="x")
            engine.schedule(0.0, lambda: None, label="y")
        assert engine.pending == 1

    def test_hooks_do_nothing_without_a_plan(self):
        from repro.versal.plio import PLIODirection, PLIOPort

        port = PLIOPort(index=0, direction=PLIODirection.AIE_TO_PL)
        assert port.transfer_seconds(1024, 200e6) > 0
