"""Tests for the retry-with-backoff policy."""

import pytest

from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.resilience import RetryPolicy, call_with_retry

# Delays collapsed to zero so the tests never actually sleep.
FAST = dict(base_delay_s=0.0, jitter=0.0)


class Flaky:
    """Raises ``exc`` for the first ``failures`` calls, then returns."""

    def __init__(self, failures, exc=ReproError("transient")):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


class TestRetryPolicy:
    def test_transient_failure_recovers(self):
        fn = Flaky(failures=2)
        policy = RetryPolicy(max_attempts=3, **FAST)
        assert policy.call(fn) == "ok"
        assert fn.calls == 3

    def test_exhaustion_reraises_the_original_exception(self):
        original = SimulationError("persistent")
        fn = Flaky(failures=99, exc=original)
        policy = RetryPolicy(max_attempts=3, **FAST)
        with pytest.raises(SimulationError) as excinfo:
            policy.call(fn)
        assert excinfo.value is original
        assert fn.calls == 3

    def test_allowlist_lets_other_exceptions_through(self):
        fn = Flaky(failures=99, exc=ValueError("not ours"))
        policy = RetryPolicy(max_attempts=5, **FAST)
        with pytest.raises(ValueError):
            policy.call(fn)
        assert fn.calls == 1  # no retry for a non-allowlisted class

    def test_custom_allowlist(self):
        fn = Flaky(failures=1, exc=KeyError("transient"))
        policy = RetryPolicy(max_attempts=2, retry_on=(KeyError,), **FAST)
        assert policy.call(fn) == "ok"

    def test_single_attempt_means_no_retry(self):
        fn = Flaky(failures=1)
        policy = RetryPolicy(max_attempts=1, **FAST)
        with pytest.raises(ReproError):
            policy.call(fn)
        assert fn.calls == 1

    def test_arguments_are_forwarded(self):
        policy = RetryPolicy(max_attempts=2, **FAST)
        assert policy.call(lambda a, b=0: a + b, 2, b=3) == 5

    def test_metrics_count_retries_and_give_ups(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            policy = RetryPolicy(max_attempts=3, **FAST)
            policy.call(Flaky(failures=1))
            with pytest.raises(ReproError):
                policy.call(Flaky(failures=99))
            counters = obs.get_metrics().snapshot()["counters"]
            assert counters["resilience.retries"] == 3  # 1 + 2
            assert counters["resilience.gave_up"] == 1
        finally:
            obs.disable()


class TestDelays:
    def test_deterministic_for_a_seed(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert list(policy.delays()) == list(policy.delays())

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, seed=1)
        b = RetryPolicy(max_attempts=5, seed=2)
        assert list(a.delays()) != list(b.delays())

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, backoff=2.0,
            max_delay_s=0.3, jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.3, 0.3, 0.3]
        )

    def test_count_is_attempts_minus_one(self):
        assert len(list(RetryPolicy(max_attempts=4).delays())) == 3


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(base_delay_s=-1.0),
            dict(max_delay_s=-0.1),
            dict(backoff=0.5),
            dict(jitter=1.5),
            dict(retry_on=()),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_none_policy_is_a_plain_call(self):
        fn = Flaky(failures=1)
        with pytest.raises(ReproError):
            call_with_retry(None, fn)
        assert fn.calls == 1

    def test_policy_is_applied(self):
        fn = Flaky(failures=1)
        policy = RetryPolicy(max_attempts=2, **FAST)
        assert call_with_retry(policy, fn) == "ok"
