"""Tests for the lease protocol (crash-detectable shard ownership)."""

import json
import time

import pytest

from repro.errors import CheckpointError
from repro.resilience import (
    Lease,
    LeaseMonitor,
    LeaseRecord,
    claim,
    read_lease,
    wall_expired,
)
from repro.resilience.lease import (
    LEASE_FORMAT,
    describe_lease,
    replace_owner,
)


def _record(**overrides):
    now = time.time()
    base = dict(
        shard=3, owner="w-1", generation=2, beat=7, ttl_s=5.0,
        wall=now, expires_at=now + 5.0, done=False,
    )
    base.update(overrides)
    return LeaseRecord(**base)


class TestLeaseRecord:
    def test_round_trip(self):
        record = _record()
        data = record.to_dict()
        assert data["format"] == LEASE_FORMAT
        assert LeaseRecord.from_dict(data) == record

    def test_done_defaults_false(self):
        data = _record().to_dict()
        del data["done"]
        assert LeaseRecord.from_dict(data).done is False


class TestReadLease:
    def test_missing_file_is_none(self, tmp_path):
        assert read_lease(tmp_path / "absent.lease") is None

    def test_torn_file_is_none(self, tmp_path):
        path = tmp_path / "torn.lease"
        path.write_text('{"format": 1, "shard"')
        assert read_lease(path) is None

    def test_wrong_format_is_none(self, tmp_path):
        path = tmp_path / "old.lease"
        path.write_text(json.dumps({"format": 99, "shard": 0}))
        assert read_lease(path) is None

    def test_non_object_is_none(self, tmp_path):
        path = tmp_path / "list.lease"
        path.write_text("[1, 2, 3]")
        assert read_lease(path) is None


class TestLease:
    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="ttl"):
            Lease(tmp_path / "a.lease", 0, ttl_s=0.0)

    def test_heartbeat_advances_beat_atomically(self, tmp_path):
        path = tmp_path / "a.lease"
        lease = Lease(path, shard=1, ttl_s=5.0, owner="me")
        first = lease.heartbeat()
        second = lease.heartbeat()
        assert (first.beat, second.beat) == (1, 2)
        on_disk = read_lease(path)
        assert on_disk == second
        assert on_disk.owner == "me"
        assert not list(tmp_path.glob("*.tmp"))  # temp cleaned up

    def test_mark_done(self, tmp_path):
        lease = Lease(tmp_path / "a.lease", shard=0, ttl_s=5.0)
        lease.heartbeat()
        record = lease.mark_done()
        assert record.done
        assert read_lease(tmp_path / "a.lease").done

    def test_acquire_fresh_starts_at_generation_zero(self, tmp_path):
        lease = Lease.acquire(tmp_path / "a.lease", shard=2, ttl_s=5.0)
        assert lease.generation == 0
        assert read_lease(tmp_path / "a.lease").beat == 1

    def test_acquire_inherits_generation_from_dead_lease(self, tmp_path):
        path = tmp_path / "a.lease"
        previous = Lease(path, shard=0, ttl_s=0.05, owner="dead",
                         generation=3)
        previous.heartbeat()
        time.sleep(0.1)  # writer stamp lapses
        retaken = Lease.acquire(path, shard=0, ttl_s=5.0, owner="new")
        assert retaken.generation == 3
        assert read_lease(path).owner == "new"

    def test_acquire_live_foreign_lease_raises(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=60.0, owner="other").heartbeat()
        with pytest.raises(CheckpointError, match="held by"):
            Lease.acquire(path, shard=0, ttl_s=60.0, owner="me")

    def test_acquire_done_lease_is_allowed(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=60.0, owner="other").mark_done()
        resumed = Lease.acquire(path, shard=0, ttl_s=60.0, owner="me")
        assert resumed.owner == "me"


class TestClaim:
    def test_claim_bumps_generation(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=4, ttl_s=0.05, owner="dead").heartbeat()
        record = read_lease(path)
        stolen = claim(path, record, shard=4, ttl_s=5.0, owner="thief")
        assert stolen.generation == record.generation + 1
        on_disk = read_lease(path)
        assert on_disk.owner == "thief"
        assert on_disk.generation == 1

    def test_claim_absent_lease_starts_at_generation_one(self, tmp_path):
        stolen = claim(tmp_path / "a.lease", None, shard=0, ttl_s=5.0)
        assert stolen.generation == 1


class TestWallExpired:
    def test_done_never_expires(self):
        record = _record(done=True, expires_at=0.0)
        assert not wall_expired(record)

    def test_past_stamp_expires(self):
        assert wall_expired(_record(expires_at=time.time() - 1.0))
        assert not wall_expired(_record())


class TestLeaseMonitor:
    def test_missing_lease_is_claimable(self, tmp_path):
        assert LeaseMonitor().expired(tmp_path / "absent.lease")

    def test_done_lease_is_never_claimable(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=0.05).mark_done()
        time.sleep(0.1)
        assert not LeaseMonitor().expired(path)

    def test_live_lease_is_not_expired(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=60.0).heartbeat()
        assert not LeaseMonitor().expired(path)

    def test_stalled_beat_expires_on_observer_clock(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=0.05).heartbeat()
        monitor = LeaseMonitor()
        monitor.observe(path)
        time.sleep(0.12)  # beat never advances past the TTL
        assert monitor.expired(path)

    def test_cold_observer_uses_writer_stamp(self, tmp_path):
        path = tmp_path / "a.lease"
        Lease(path, shard=0, ttl_s=0.05).heartbeat()
        time.sleep(0.1)
        # A fresh monitor has no beat history, but the writer's own
        # expires_at already lapsed — claimable at first sight.
        assert LeaseMonitor().expired(path)

    def test_advancing_beat_resets_staleness(self, tmp_path):
        path = tmp_path / "a.lease"
        lease = Lease(path, shard=0, ttl_s=0.2)
        lease.heartbeat()
        monitor = LeaseMonitor()
        monitor.observe(path)
        time.sleep(0.1)
        lease.heartbeat()  # still alive, just slow
        assert not monitor.expired(path)


class TestHelpers:
    def test_describe_lease_states(self, tmp_path):
        assert describe_lease(None) == "absent"
        assert describe_lease(_record()).startswith("live")
        assert describe_lease(_record(done=True)).startswith("done")
        stale = _record(expires_at=time.time() - 1.0)
        assert describe_lease(stale).startswith("expired")

    def test_replace_owner(self):
        swapped = replace_owner(_record(), "new-owner")
        assert swapped.owner == "new-owner"
        assert swapped.beat == _record().beat
