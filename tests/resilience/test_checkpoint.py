"""Tests for sweep checkpoint/resume."""

import json

import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.errors import CheckpointError, ParallelExecutionError
from repro.io import design_point_to_dict
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SweepCheckpoint,
    as_checkpoint,
)


def _fingerprint(points):
    return json.dumps(
        [design_point_to_dict(p) for p in points], sort_keys=True
    )


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(64, 64)


class TestSweepCheckpoint:
    def test_design_point_round_trip(self, tmp_path, explorer):
        point = explorer.evaluate(4, 1)
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="dse-sweep")
        ck.record("k1", point)
        ck.flush()

        fresh = SweepCheckpoint(path, kind="dse-sweep")
        restored = fresh.get("k1")
        assert restored is not None
        assert design_point_to_dict(restored) == design_point_to_dict(point)
        assert fresh.resumed == 1
        assert fresh.get("unknown") is None

    def test_auto_flush_every_interval(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="sweep", flush_interval=2)
        ck.record("a", 1.0)
        assert not path.exists()  # still buffered
        ck.record("b", 2.0)
        assert path.exists()  # interval reached → atomic write
        assert len(SweepCheckpoint(path, kind="sweep")) == 2

    def test_contains_does_not_count_as_resume(self, tmp_path):
        ck = SweepCheckpoint(tmp_path / "ck.json", kind="sweep")
        ck.record("a", 1.0)
        assert ck.contains("a")
        assert not ck.contains("b")
        assert ck.resumed == 0

    def test_kind_mismatch_raises(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="dse-sweep")
        ck.record("a", 1.0)
        ck.flush()
        with pytest.raises(CheckpointError, match="dse-sweep"):
            SweepCheckpoint(path, kind="sensitivity")

    def test_corrupt_file_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated")
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            ck = SweepCheckpoint(path, kind="sweep")
        assert len(ck) == 0
        ck.record("a", 1.0)
        ck.flush()
        assert len(SweepCheckpoint(path, kind="sweep")) == 1

    def test_stale_model_version_discarded(self, tmp_path, monkeypatch):
        from repro.core import perf_model

        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="sweep")
        ck.record("a", 1.0)
        ck.flush()
        monkeypatch.setattr(perf_model, "MODEL_VERSION", "0.0-stale")
        with pytest.warns(UserWarning, match="stale checkpoint"):
            stale = SweepCheckpoint(path, kind="sweep")
        assert len(stale) == 0

    def test_garbled_entry_recomputed_not_fatal(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="sweep")
        ck.record("good", 1.0)
        ck.flush()
        data = json.loads(path.read_text())
        data["entries"]["bad"] = {"type": "design_point", "data": {}}
        path.write_text(json.dumps(data))
        fresh = SweepCheckpoint(path, kind="sweep")
        assert fresh.get("bad") is None  # evicted, will be recomputed
        assert fresh.get("good") == 1.0

    def test_as_checkpoint_coercions(self, tmp_path):
        assert as_checkpoint(None, kind="sweep") is None
        ck = SweepCheckpoint(tmp_path / "a.json", kind="dse-sweep")
        assert as_checkpoint(ck, kind="ignored") is ck
        opened = as_checkpoint(tmp_path / "b.json", kind="dse-sweep")
        assert isinstance(opened, SweepCheckpoint)
        assert opened.kind == "dse-sweep"


class TestCheckpointQuarantine:
    """A damaged ledger is moved aside and re-swept, never fatal."""

    def _half_written(self, tmp_path):
        """A ledger whose flush was cut mid-payload (torn write)."""
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="sweep")
        ck.record("a", 1.0)
        ck.record("b", 2.0)
        ck.flush()
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        return path

    def test_half_written_ledger_quarantined_and_restarted(self, tmp_path):
        path = self._half_written(tmp_path)
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            fresh = SweepCheckpoint(path, kind="sweep")
        assert len(fresh) == 0  # restart empty, recompute
        assert not path.exists()  # the damaged file was moved aside
        quarantine = tmp_path / "ck.json.corrupt-1"
        assert quarantine.exists()
        assert fresh.quarantined == [str(quarantine)]
        # The evidence is intact: exactly the torn bytes, where a
        # human (or the merge provenance) can inspect them.
        assert quarantine.read_text().startswith("{")
        fresh.record("a", 3.0)
        fresh.flush()
        assert SweepCheckpoint(path, kind="sweep").get("a") == 3.0

    def test_binary_garbage_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x9c")
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            ck = SweepCheckpoint(path, kind="sweep")
        assert len(ck) == 0
        assert (tmp_path / "ck.json.corrupt-1").exists()

    def test_quarantine_names_never_collide(self, tmp_path):
        (tmp_path / "ck.json.corrupt-1").write_text("older damage")
        path = self._half_written(tmp_path)
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            ck = SweepCheckpoint(path, kind="sweep")
        assert ck.quarantined == [str(tmp_path / "ck.json.corrupt-2")]
        assert (tmp_path / "ck.json.corrupt-1").read_text() == "older damage"

    def test_corrupt_files_counter(self, tmp_path):
        from repro import obs

        path = self._half_written(tmp_path)
        obs.reset()
        obs.enable()
        try:
            with pytest.warns(UserWarning, match="corrupt checkpoint"):
                SweepCheckpoint(path, kind="sweep")
            counters = obs.get_metrics().snapshot()["counters"]
            assert counters["checkpoint.corrupt_files"] == 1
        finally:
            obs.disable()

    def test_torn_write_fault_site_round_trip(self, tmp_path):
        """The injected torn flush is exactly what quarantine repairs."""
        path = tmp_path / "ck.json"
        plan = FaultPlan(
            faults=[FaultSpec(site="checkpoint.torn_write", at=(0,))]
        )
        ck = SweepCheckpoint(path, kind="sweep")
        ck.record("a", 1.0)
        with plan.activate():
            ck.flush()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())  # the flush really tore
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            fresh = SweepCheckpoint(path, kind="sweep")
        assert len(fresh) == 0
        fresh.record("a", 1.0)
        fresh.flush()
        assert SweepCheckpoint(path, kind="sweep").get("a") == 1.0

    def test_healthy_ledger_is_not_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = SweepCheckpoint(path, kind="sweep")
        ck.record("a", 1.0)
        ck.flush()
        fresh = SweepCheckpoint(path, kind="sweep")
        assert fresh.quarantined == []
        assert not list(tmp_path.glob("*.corrupt-*"))


class TestDSEResume:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, explorer):
        baseline = explorer.explore()
        path = tmp_path / "dse.json"

        # First run: the pool is killed on its second fan-out chunk.
        plan = FaultPlan(
            faults=[FaultSpec(site="exec.worker_crash", at=(1,))]
        )
        ck = SweepCheckpoint(path, kind="dse-sweep")
        with plan.activate():
            with pytest.raises(ParallelExecutionError):
                explorer.explore(jobs=1, checkpoint=ck)
        survived = SweepCheckpoint(path, kind="dse-sweep")
        assert 0 < len(survived) < len(baseline)  # partial progress kept

        # Resume against the same file: completes, and the result is
        # byte-identical to the never-interrupted sweep.
        resumed = explorer.explore(jobs=1, checkpoint=survived)
        assert survived.resumed > 0
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_checkpoint_and_retry_preserve_numeric_parity(
        self, tmp_path, explorer
    ):
        baseline = explorer.explore()
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        points = explorer.explore(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "dse.json",
                                       kind="dse-sweep"),
            retry=retry,
        )
        assert _fingerprint(points) == _fingerprint(baseline)

    def test_retry_recovers_a_crashed_chunk(self, tmp_path, explorer):
        baseline = explorer.explore()
        plan = FaultPlan(
            faults=[FaultSpec(site="exec.worker_crash", at=(1,))]
        )
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        ck = SweepCheckpoint(tmp_path / "dse.json", kind="dse-sweep")
        with plan.activate():
            # The crash counter lives in the parent, so the re-attempted
            # chunk lands on the next index and succeeds.
            points = explorer.explore(jobs=1, checkpoint=ck, retry=retry)
        assert _fingerprint(points) == _fingerprint(baseline)

    def test_best_accepts_resilience_arguments(self, tmp_path, explorer):
        best_plain = explorer.best()
        best_ck = explorer.best(
            jobs=1,
            checkpoint=SweepCheckpoint(tmp_path / "dse.json",
                                       kind="dse-sweep"),
        )
        assert design_point_to_dict(best_ck) == design_point_to_dict(
            best_plain
        )


class TestSensitivityResume:
    def test_resume_skips_completed_knobs(self, tmp_path, explorer):
        from repro.analysis.sensitivity import sensitivity_analysis

        config = explorer.make_config(4, 1)
        baseline = sensitivity_analysis(config)
        path = tmp_path / "sens.json"

        first = sensitivity_analysis(config, checkpoint=path)
        assert first == baseline

        ck = SweepCheckpoint(path, kind="sensitivity")
        second = sensitivity_analysis(config, checkpoint=ck)
        assert ck.resumed == len(baseline)  # every knob restored
        assert ck.recorded == 0
        assert second == baseline
