"""Property-based tests for the batch scheduler and Pareto front."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import pareto_front
from repro.core.config import HeteroSVDConfig
from repro.core.scheduler import BatchScheduler, TaskSpec

SIZES = st.sampled_from([(32, 32), (64, 64), (64, 32), (128, 128)])


@pytest.fixture(scope="module")
def scheduler():
    return BatchScheduler(HeteroSVDConfig(m=128, n=128, p_eng=4, p_task=3))


class TestSchedulerProperties:
    @given(st.lists(SIZES, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_schedule_invariants(self, scheduler, batch_sizes):
        batch = [
            TaskSpec(m=m, n=n, task_id=i)
            for i, (m, n) in enumerate(batch_sizes)
        ]
        plan = scheduler.schedule(batch)
        # Every task scheduled exactly once.
        assert sorted(t.spec.task_id for t in plan.tasks) == list(
            range(len(batch))
        )
        # No overlap within a pipeline, makespan covers everything.
        for pipe in range(3):
            tasks = plan.pipeline_tasks(pipe)
            for a, b in zip(tasks, tasks[1:]):
                assert b.start >= a.end - 1e-12
        assert plan.makespan >= max(t.end for t in plan.tasks) - 1e-12
        # Work conservation: sum of pipeline times equals sum of costs.
        total = sum(t.duration for t in plan.tasks)
        assert sum(plan.pipeline_times) == pytest.approx(total)

    @given(st.lists(SIZES, min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_lpt_never_worse_than_4_thirds_of_lower_bound(
        self, scheduler, batch_sizes
    ):
        batch = [
            TaskSpec(m=m, n=n, task_id=i)
            for i, (m, n) in enumerate(batch_sizes)
        ]
        plan = scheduler.schedule(batch, policy="lpt")
        costs = [scheduler.task_cost(s) for s in batch]
        # List-scheduling guarantee: when the task finishing last was
        # placed, its machine was the least loaded (<= mean), so the
        # makespan is at most mean load + the largest task.
        mean_load = sum(costs) / 3
        assert plan.makespan <= mean_load + max(costs) + 1e-12
        # And never below the trivial lower bound.
        assert plan.makespan >= max(max(costs), mean_load) - 1e-12


class TestParetoProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_front_of_front_is_front(self, seed):
        from repro.core.dse import DesignSpaceExplorer
        from repro.units import mhz

        dse = DesignSpaceExplorer(128, 128, fixed_iterations=6)
        points = dse.explore("latency", frequency_hz=mhz(208.3))
        # Deterministic but subsample by seed to vary the candidate set.
        subset = points[seed % max(1, len(points) - 3):]
        if not subset:
            return
        front = pareto_front(subset)
        assert pareto_front(front) == front
