"""Property-based tests for the placement engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HeteroSVDConfig
from repro.core.placement import place
from repro.errors import PlacementError
from repro.versal.tile import TileKind


def make_config(p_eng, p_task):
    n = 64 if 64 % p_eng == 0 else (64 // p_eng + 1) * p_eng
    return HeteroSVDConfig(m=64, n=n, p_eng=p_eng, p_task=p_task)


class TestPlacementProperties:
    @given(
        st.integers(min_value=1, max_value=11),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_placed_designs_are_consistent(self, p_eng, p_task):
        config = make_config(p_eng, p_task)
        try:
            placement = place(config)
        except PlacementError:
            return  # infeasible combinations are allowed to refuse

        # Exact Table I counts.
        assert placement.num_orth == p_task * p_eng * (2 * p_eng - 1)
        assert placement.num_norm == p_task * p_eng
        # No tile double-booked, every assignment has a role.
        seen = set()
        for task in placement.tasks:
            for coord in list(task.orth.values()) + task.mem + task.norm:
                assert coord not in seen
                seen.add(coord)
                assert 0 <= coord[0] < placement.array.rows
                assert 0 <= coord[1] < placement.array.cols
        assert len(seen) == placement.num_aie
        # Array bookkeeping agrees with the per-task records.
        assert (
            placement.array.count_of_kind(TileKind.ORTH)
            == placement.num_orth
        )
        # Orth tiles never sit on the boundary rows.
        for task in placement.tasks:
            for coord in task.orth.values():
                assert 1 <= coord[0] <= placement.array.rows - 2

    @given(st.integers(min_value=1, max_value=11))
    @settings(max_examples=22, deadline=None)
    def test_monotone_infeasibility(self, p_eng):
        # If p_task tasks do not fit, p_task + 1 must not fit either.
        feasible = []
        for p_task in range(1, 8):
            try:
                place(make_config(p_eng, p_task))
                feasible.append(True)
            except PlacementError:
                feasible.append(False)
        # No True after the first False.
        if False in feasible:
            first_false = feasible.index(False)
            assert not any(feasible[first_false:])
