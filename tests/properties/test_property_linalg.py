"""Property-based tests (hypothesis) for the numerical core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.convergence import pair_convergence_ratio
from repro.linalg.orderings import (
    RingOrdering,
    RoundRobinOrdering,
    ShiftingRingOrdering,
    validate_ordering,
)
from repro.linalg.rotations import rotate_pair
from repro.linalg.svd import svd

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRotationProperties:
    @given(
        arrays(np.float64, st.integers(2, 40), elements=finite_floats),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_orthogonalizes_and_preserves_energy(self, ai, random):
        aj = np.array([random.uniform(-1e6, 1e6) for _ in range(len(ai))])
        bi, bj, _ = rotate_pair(ai, aj)
        energy_before = ai @ ai + aj @ aj
        energy_after = bi @ bi + bj @ bj
        # Energy (Frobenius norm of the pair) is invariant.
        assert energy_after == pytest.approx(energy_before, rel=1e-9, abs=1e-9)
        # The rotated pair is orthogonal to working precision.
        scale = max(energy_before, 1e-30)
        assert abs(bi @ bj) / scale < 1e-8

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=-1e6, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_convergence_ratio_is_a_cosine(self, alpha, beta, gamma):
        # |cos| <= 1 up to floating error for any Gram triple that came
        # from real vectors; for arbitrary triples it is still >= 0.
        ratio = pair_convergence_ratio(alpha, beta, gamma)
        assert ratio >= 0.0


class TestOrderingProperties:
    @given(
        st.integers(min_value=1, max_value=24),
        st.sampled_from([RingOrdering, RoundRobinOrdering, ShiftingRingOrdering]),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_ordering_is_a_valid_sweep(self, half_n, cls):
        n = 2 * half_n
        validate_ordering(cls(n).rounds(), n)

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_shifting_slots_are_permutations(self, half_n):
        ordering = ShiftingRingOrdering(2 * half_n)
        k = ordering.pairs_per_round
        for r in range(ordering.n_rounds):
            assert sorted(
                ordering.slot_of(r, p) for p in range(k)
            ) == list(range(k))


class TestSVDProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_svd_invariants_random_matrices(self, m, n, seed):
        a = np.random.default_rng(seed).standard_normal((m, n))
        result = svd(a, precision=1e-10)
        s = result.singular_values
        # Non-negative, descending spectrum.
        assert np.all(s >= 0)
        assert np.all(s[:-1] >= s[1:] - 1e-12)
        # Frobenius norm identity: ||A||_F^2 == sum sigma_i^2.
        assert np.sum(s**2) == pytest.approx(np.sum(a**2), rel=1e-8)
        # Spectrum matches LAPACK.
        s_ref = np.linalg.svd(a, compute_uv=False)
        scale = max(s_ref[0], 1e-12)
        assert np.max(np.abs(s - s_ref)) / scale < 1e-7

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_transpose_duality(self, seed):
        a = np.random.default_rng(seed).standard_normal((9, 5))
        s1 = svd(a, precision=1e-10).singular_values
        s2 = svd(a.T, precision=1e-10).singular_values
        assert np.allclose(s1, s2, rtol=1e-8)
