"""Property-based tests (hypothesis) for the hardware models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import DataflowMode
from repro.core.ordering_codesign import (
    MovementSchedule,
    codesign_dma_transfers,
    traditional_dma_transfers,
)
from repro.errors import MemoryAllocationError
from repro.pl.fifo import FIFO
from repro.sim.engine import Resource
from repro.versal.array import AIEArray
from repro.versal.memory import MemoryModule


class TestDMACountProperties:
    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=32, deadline=None)
    def test_codesign_never_worse(self, k):
        trad = MovementSchedule(k=k, shifting=False).dma_count(DataflowMode.NAIVE)
        code = MovementSchedule(k=k, shifting=True).dma_count(
            DataflowMode.RELOCATED
        )
        assert code <= trad
        assert trad == traditional_dma_transfers(k)
        assert code == codesign_dma_transfers(k)

    @given(st.integers(min_value=1, max_value=16), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_counts_independent_of_first_row(self, k, first_row):
        # Shifting the placement's starting row permutes which
        # transitions pay, never the totals.
        schedule = MovementSchedule(k=k, shifting=True, first_row=first_row)
        assert schedule.dma_count(DataflowMode.RELOCATED) == (
            codesign_dma_transfers(k)
        )


class TestNeighborRelationProperties:
    @given(st.integers(0, 7), st.integers(0, 49), st.integers(0, 7), st.integers(0, 49))
    @settings(max_examples=200, deadline=None)
    def test_neighbor_access_requires_adjacency(self, r1, c1, r2, c2):
        array = AIEArray()
        if array.is_neighbor_accessible((r1, c1), (r2, c2)):
            assert abs(r1 - r2) + abs(c1 - c2) <= 1

    @given(st.integers(0, 7), st.integers(0, 49))
    @settings(max_examples=100, deadline=None)
    def test_own_memory_always_accessible(self, r, c):
        array = AIEArray()
        assert array.is_neighbor_accessible((r, c), (r, c))


class TestFIFOProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_fifo_preserves_order(self, items):
        fifo = FIFO("p")
        for item in items:
            fifo.push(item)
        out = [fifo.pop() for _ in range(len(items))]
        assert out == items

    @given(st.lists(st.integers(min_value=1, max_value=100), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_high_water_bounds_occupancy(self, sizes):
        fifo = FIFO("p")
        occupancy = 0
        peak = 0
        for size in sizes:
            fifo.push(size)
            occupancy += 1
            peak = max(peak, occupancy)
        assert fifo.high_water == peak


class TestMemoryProperties:
    @given(st.lists(st.integers(min_value=1, max_value=8 * 1024 * 8), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_allocator_conserves_capacity(self, sizes):
        module = MemoryModule()
        allocated = []
        for i, size in enumerate(sizes):
            try:
                module.allocate(f"buf{i}", size)
                allocated.append(size)
            except MemoryAllocationError:
                pass
        assert module.used_bits == sum(allocated)
        assert 0 <= module.used_bits <= module.capacity_bits


class TestResourceProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=10),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_resource_completions_monotone(self, requests):
        r = Resource("p")
        previous_end = 0.0
        for ready, duration in requests:
            end = r.serve(ready, duration)
            # FIFO service: completions never go backwards.
            assert end >= previous_end
            assert end >= ready + duration
            previous_end = end
