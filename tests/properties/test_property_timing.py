"""Property-based test: model/simulator agreement across the config space.

The Table IV/V experiments validate the analytical model at the paper's
operating points; this property test sweeps random feasible design
points (size, engine parallelism, clock, iteration count) and requires
the model to track the event simulation within a fixed band everywhere
— the guarantee the DSE's rankings rest on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HeteroSVDConfig
from repro.core.perf_model import PerformanceModel
from repro.core.timing import TimingSimulator
from repro.units import mhz


@st.composite
def design_points(draw):
    """Feasible configs inside the model's validated regime.

    Eight or more blocks keeps ``num >= 28`` — the paper's own smallest
    experiment has 120 block pairs, and below ~15 pairs the analytic
    drain/dependency terms are acknowledged approximations (the
    dependency-bound tiny-``num`` regime is covered by the exact
    co-simulation instead).
    """
    p_eng = draw(st.sampled_from([1, 2, 3, 4, 6, 8]))
    m = draw(st.sampled_from([64, 128, 256]))
    n_blocks = draw(st.integers(min_value=8, max_value=24))
    freq = draw(st.sampled_from([208.3, 300.0, 450.0]))
    iterations = draw(st.integers(min_value=1, max_value=4))
    return HeteroSVDConfig(
        m=m,
        n=n_blocks * p_eng,
        p_eng=p_eng,
        p_task=1,
        pl_frequency_hz=mhz(freq),
        fixed_iterations=iterations,
    )


class TestModelSimAgreement:
    @given(design_points())
    @settings(max_examples=30, deadline=None)
    def test_task_time_within_band(self, config):
        modelled = PerformanceModel(config).task_time()
        simulated = TimingSimulator(config).simulate(1).latency
        assert modelled > 0
        assert simulated > 0
        error = abs(modelled - simulated) / simulated
        assert error < 0.20, (config.describe(), error)

    @given(design_points())
    @settings(max_examples=20, deadline=None)
    def test_iteration_time_within_band(self, config):
        measured = TimingSimulator(config).measure_iteration_time()
        modelled = PerformanceModel(config).iteration_time()
        error = abs(modelled - measured) / measured
        assert error < 0.20, (config.describe(), error)

    def test_single_pair_degenerate_case_exact(self):
        # num == 1: the composition is exact (no dependency terms).
        config = HeteroSVDConfig(
            m=64, n=2, p_eng=1, p_task=1,
            pl_frequency_hz=mhz(450), fixed_iterations=2,
        )
        measured = TimingSimulator(config).measure_iteration_time()
        modelled = PerformanceModel(config).iteration_time()
        assert abs(modelled - measured) / measured < 0.05
