"""Tests for the HTML report generator."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.experiments import ExperimentLog
from repro.reporting.html import render_experiment, render_report, write_report


@pytest.fixture
def log():
    log = ExperimentLog("Table II")
    log.record("128x128", "latency (s)", 0.0007, paper_value=0.0011)
    log.record("256x256", "latency (s)", 0.0056, paper_value=0.0057)
    return log


class TestRenderExperiment:
    def test_contains_rows_and_values(self, log):
        fragment = render_experiment(log)
        assert "Table II" in fragment
        assert "128x128" in fragment
        assert "0.0056" in fragment

    def test_flags_large_deviations(self):
        log = ExperimentLog("X")
        log.record("case", "metric", 100.0, paper_value=1.0)
        fragment = render_experiment(log, bad_ratio=3.0)
        assert 'class="bad"' in fragment

    def test_no_flag_for_close_values(self, log):
        assert 'class="bad"' not in render_experiment(log)

    def test_escapes_html(self):
        log = ExperimentLog("<script>")
        log.record("<b>case</b>", "metric", 1.0)
        fragment = render_experiment(log)
        assert "<script>" not in fragment
        assert "&lt;script&gt;" in fragment


class TestRenderReport:
    def test_complete_page(self, log):
        page = render_report([log], title="My report")
        assert page.startswith("<!DOCTYPE html>")
        assert "My report" in page
        assert "1 experiments, 2 data points" in page

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_report([])

    def test_write_report(self, log, tmp_path):
        path = write_report([log], tmp_path / "report.html")
        content = path.read_text()
        assert "</html>" in content
