"""Tests for the terminal plots."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.plots import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_rows_and_legend(self):
        chart = line_chart(
            "Crossover",
            ["128", "256", "512"],
            {"gpu": [10.0, 100.0, 1000.0], "hetero": [20.0, 90.0, 500.0]},
        )
        assert "Crossover" in chart
        assert "o = gpu" in chart
        assert "x = hetero" in chart
        assert chart.count("|") == 2 * 3  # two walls per data row

    def test_extremes_land_on_edges(self):
        chart = line_chart(
            "T", ["a", "b"], {"s": [1.0, 1000.0]}, width=20, log=True
        )
        rows = chart.splitlines()[3:5]
        assert rows[0].index("o") < rows[1].index("o")
        assert rows[1].rstrip().endswith("o|")

    def test_overlap_marker(self):
        chart = line_chart(
            "T", ["a"], {"s1": [5.0], "s2": [5.0]}, width=10
        )
        assert "&" in chart

    def test_constant_series_ok(self):
        chart = line_chart("T", ["a", "b"], {"s": [3.0, 3.0]})
        assert "3" in chart

    def test_ragged_series_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart("T", ["a", "b"], {"s": [1.0]})

    def test_log_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            line_chart("T", ["a"], {"s": [0.0]}, log=True)

    def test_linear_mode_allows_zero(self):
        chart = line_chart("T", ["a", "b"], {"s": [0.0, 5.0]}, log=False)
        assert "linear scale" in chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart("B", ["small", "large"], [1.0, 10.0], width=30)
        lines = chart.splitlines()[2:]
        assert lines[0].count("#") < lines[1].count("#")

    def test_values_annotated(self):
        chart = bar_chart("B", ["x"], [42.0])
        assert "42" in chart

    def test_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            bar_chart("B", ["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart("B", [], [])

    def test_log_mode(self):
        chart = bar_chart("B", ["a", "b"], [0.001, 1000.0], log=True)
        lines = chart.splitlines()[2:]
        assert lines[0].count("#") < lines[1].count("#")
