"""Unit tests for the reporting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.experiments import ExperimentLog, ExperimentRecord
from repro.reporting.tables import Table, format_ratio, format_seconds


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row(100, "yyyy")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        # All data lines share one width.
        assert len(lines[3]) == len(lines[4]) == len(lines[5])

    def test_row_cell_count_enforced(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            Table("T", [])

    def test_print(self, capsys):
        table = Table("T", ["x"])
        table.add_row(1)
        table.print()
        out = capsys.readouterr().out
        assert "T" in out
        assert "1" in out


class TestFormatters:
    def test_format_seconds_units(self):
        assert format_seconds(2.5).endswith(" s")
        assert format_seconds(0.0025).endswith(" ms")
        assert format_seconds(2.5e-6).endswith(" us")

    def test_format_ratio(self):
        assert format_ratio(2.0, 4.0) == "2.00x"
        assert format_ratio(0.0, 1.0) == "inf"


class TestExperimentLog:
    def test_records_and_ratio(self):
        log = ExperimentLog("Table II")
        rec = log.record("128x128", "latency (s)", 0.0012, paper_value=0.0011)
        assert isinstance(rec, ExperimentRecord)
        assert rec.ratio == pytest.approx(0.0012 / 0.0011)

    def test_ratio_without_paper_value(self):
        log = ExperimentLog("Fig. 9")
        rec = log.record("case", "metric", 5.0)
        assert rec.ratio is None

    def test_render_contains_rows(self):
        log = ExperimentLog("Table IV")
        log.record("128", "error (%)", 2.9, paper_value=2.92)
        text = log.render()
        assert "Table IV" in text
        assert "128" in text

    def test_empty_experiment_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentLog("")
